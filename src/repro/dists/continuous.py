"""Continuous distributions: Gaussian, Uniform, Gamma, Beta,
Exponential.

``Gaussian`` is parameterized by mean and **variance**, matching the
paper's usage ``Gaussian(mu, sigma^2)`` (Section 3).
"""

from __future__ import annotations

import math
import random

from .base import (
    Distribution,
    DistributionError,
    NEG_INF,
    Value,
    _as_float,
    register,
)

__all__ = ["Gaussian", "Uniform", "Gamma", "Beta", "Exponential"]

_LOG_2PI = math.log(2.0 * math.pi)


@register("Gaussian")
class Gaussian(Distribution):
    """``Gaussian(mean, variance)``."""

    discrete = False

    def __init__(self, mean: Value, variance: Value) -> None:
        self.mu = _as_float(mean, "Gaussian mean")
        self.var = _as_float(variance, "Gaussian variance")
        if self.var <= 0.0:
            raise DistributionError(f"Gaussian variance must be > 0, got {self.var}")

    def sample(self, rng: random.Random) -> float:
        return rng.gauss(self.mu, math.sqrt(self.var))

    def log_prob(self, value: Value) -> float:
        x = _as_float(value, "Gaussian value")
        return -0.5 * (_LOG_2PI + math.log(self.var) + (x - self.mu) ** 2 / self.var)

    def mean(self) -> float:
        return self.mu

    def variance(self) -> float:
        return self.var

    def __repr__(self) -> str:
        return f"Gaussian({self.mu}, {self.var})"


@register("Uniform")
class Uniform(Distribution):
    """``Uniform(lo, hi)`` — continuous uniform on ``[lo, hi)``."""

    discrete = False

    def __init__(self, lo: Value, hi: Value) -> None:
        self.lo = _as_float(lo, "Uniform lo")
        self.hi = _as_float(hi, "Uniform hi")
        if self.hi <= self.lo:
            raise DistributionError(
                f"Uniform needs lo < hi, got [{self.lo}, {self.hi})"
            )

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.lo, self.hi)

    def log_prob(self, value: Value) -> float:
        x = _as_float(value, "Uniform value")
        if self.lo <= x < self.hi:
            return -math.log(self.hi - self.lo)
        return NEG_INF

    def mean(self) -> float:
        return (self.lo + self.hi) / 2.0

    def variance(self) -> float:
        return (self.hi - self.lo) ** 2 / 12.0

    def __repr__(self) -> str:
        return f"Uniform({self.lo}, {self.hi})"


@register("Gamma")
class Gamma(Distribution):
    """``Gamma(shape, rate)`` — the rate (inverse-scale)
    parameterization, density ``rate^shape x^(shape-1) e^(-rate x) /
    Gamma(shape)``."""

    discrete = False

    def __init__(self, shape: Value, rate: Value) -> None:
        self.shape = _as_float(shape, "Gamma shape")
        self.rate = _as_float(rate, "Gamma rate")
        if self.shape <= 0.0 or self.rate <= 0.0:
            raise DistributionError(
                f"Gamma parameters must be > 0, got ({self.shape}, {self.rate})"
            )

    def sample(self, rng: random.Random) -> float:
        return rng.gammavariate(self.shape, 1.0 / self.rate)

    def log_prob(self, value: Value) -> float:
        x = _as_float(value, "Gamma value")
        if x <= 0.0:
            return NEG_INF
        return (
            self.shape * math.log(self.rate)
            + (self.shape - 1.0) * math.log(x)
            - self.rate * x
            - math.lgamma(self.shape)
        )

    def mean(self) -> float:
        return self.shape / self.rate

    def variance(self) -> float:
        return self.shape / self.rate ** 2

    def __repr__(self) -> str:
        return f"Gamma({self.shape}, {self.rate})"


@register("Beta")
class Beta(Distribution):
    """``Beta(alpha, beta)`` on ``(0, 1)``."""

    discrete = False

    def __init__(self, alpha: Value, beta: Value) -> None:
        self.alpha = _as_float(alpha, "Beta alpha")
        self.beta = _as_float(beta, "Beta beta")
        if self.alpha <= 0.0 or self.beta <= 0.0:
            raise DistributionError(
                f"Beta parameters must be > 0, got ({self.alpha}, {self.beta})"
            )

    def sample(self, rng: random.Random) -> float:
        return rng.betavariate(self.alpha, self.beta)

    def log_prob(self, value: Value) -> float:
        x = _as_float(value, "Beta value")
        if not 0.0 < x < 1.0:
            return NEG_INF
        log_norm = (
            math.lgamma(self.alpha)
            + math.lgamma(self.beta)
            - math.lgamma(self.alpha + self.beta)
        )
        return (
            (self.alpha - 1.0) * math.log(x)
            + (self.beta - 1.0) * math.log1p(-x)
            - log_norm
        )

    def mean(self) -> float:
        return self.alpha / (self.alpha + self.beta)

    def variance(self) -> float:
        s = self.alpha + self.beta
        return self.alpha * self.beta / (s ** 2 * (s + 1.0))

    def __repr__(self) -> str:
        return f"Beta({self.alpha}, {self.beta})"


@register("Exponential")
class Exponential(Distribution):
    """``Exponential(rate)`` on ``[0, inf)``."""

    discrete = False

    def __init__(self, rate: Value) -> None:
        self.rate = _as_float(rate, "Exponential rate")
        if self.rate <= 0.0:
            raise DistributionError(
                f"Exponential rate must be > 0, got {self.rate}"
            )

    def sample(self, rng: random.Random) -> float:
        return rng.expovariate(self.rate)

    def log_prob(self, value: Value) -> float:
        x = _as_float(value, "Exponential value")
        if x < 0.0:
            return NEG_INF
        return math.log(self.rate) - self.rate * x

    def mean(self) -> float:
        return 1.0 / self.rate

    def variance(self) -> float:
        return 1.0 / self.rate ** 2

    def __repr__(self) -> str:
        return f"Exponential({self.rate})"
