"""Distribution interface and registry.

Each distribution used in a PROB program (``x ~ Dist(theta...)``)
resolves, at execution time, to an instance of :class:`Distribution`
built by :func:`make_distribution` from the evaluated parameter values.

Discrete distributions additionally support exact enumeration of their
support (:meth:`Distribution.enumerate_support`), which powers the
exact denotational-semantics engine; infinite discrete supports
(Poisson, Geometric) are enumerated up to a residual tail mass.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, Iterator, List, Tuple, Union

__all__ = [
    "Value",
    "Distribution",
    "DistributionError",
    "register",
    "make_distribution",
    "registered_distributions",
    "NEG_INF",
]

Value = Union[bool, int, float]

NEG_INF = float("-inf")


class DistributionError(ValueError):
    """Invalid distribution parameters or unsupported operation."""


class Distribution:
    """Abstract base for all PROB distributions.

    Subclasses must implement :meth:`sample` and :meth:`log_prob`;
    discrete subclasses should set ``discrete = True`` and implement
    :meth:`enumerate_support`.
    """

    #: Registry name, set by the :func:`register` decorator.
    name: str = ""
    #: Whether the distribution has countable support.
    discrete: bool = False

    def sample(self, rng: random.Random) -> Value:
        """Draw a value using ``rng``."""
        raise NotImplementedError

    def log_prob(self, value: Value) -> float:
        """Log density (continuous) or log mass (discrete) of ``value``;
        ``-inf`` outside the support."""
        raise NotImplementedError

    def prob(self, value: Value) -> float:
        """Density/mass of ``value`` (``exp(log_prob)``)."""
        lp = self.log_prob(value)
        return 0.0 if lp == NEG_INF else math.exp(lp)

    def mean(self) -> float:
        """Expected value."""
        raise NotImplementedError

    def variance(self) -> float:
        """Variance."""
        raise NotImplementedError

    def enumerate_support(self, tol: float = 0.0) -> Iterator[Tuple[Value, float]]:
        """Yield ``(value, probability)`` pairs covering at least mass
        ``1 - tol``.  Only available for discrete distributions."""
        raise DistributionError(
            f"{self.name or type(self).__name__} has no enumerable support"
        )

    def support_values(self, tol: float = 0.0) -> List[Value]:
        """The values of :meth:`enumerate_support`, as a list."""
        return [value for value, _ in self.enumerate_support(tol)]

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


_REGISTRY: Dict[str, Callable[..., Distribution]] = {}


def register(name: str) -> Callable[[type], type]:
    """Class decorator registering a distribution under ``name`` (the
    identifier used in PROB source, e.g. ``Bernoulli``)."""

    def decorate(cls: type) -> type:
        if name in _REGISTRY:
            raise ValueError(f"distribution {name!r} already registered")
        cls.name = name  # type: ignore[attr-defined]
        _REGISTRY[name] = cls
        return cls

    return decorate


def make_distribution(name: str, args: Tuple[Value, ...]) -> Distribution:
    """Instantiate the distribution registered as ``name`` with the
    given (already evaluated) parameter values."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise DistributionError(f"unknown distribution {name!r}") from None
    try:
        return factory(*args)
    except TypeError as exc:
        raise DistributionError(f"bad arguments for {name}: {exc}") from None


def registered_distributions() -> List[str]:
    """Names of all registered distributions, sorted."""
    return sorted(_REGISTRY)


def _as_float(value: Value, what: str) -> float:
    """Coerce a parameter to float, rejecting booleans-as-numbers only
    when nonsensical (we allow them: ``true`` is 1)."""
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    raise DistributionError(f"{what} must be numeric, got {value!r}")
