"""Discrete distributions: Bernoulli, Categorical, DiscreteUniform,
Binomial, Poisson, Geometric."""

from __future__ import annotations

import math
import random
from typing import Iterator, Tuple

from .base import (
    Distribution,
    DistributionError,
    NEG_INF,
    Value,
    _as_float,
    register,
)

__all__ = [
    "Bernoulli",
    "Categorical",
    "DiscreteUniform",
    "Binomial",
    "Poisson",
    "Geometric",
]


@register("Bernoulli")
class Bernoulli(Distribution):
    """``Bernoulli(p)`` — boolean draw that is ``true`` with probability
    ``p``."""

    discrete = True

    def __init__(self, p: Value) -> None:
        self.p = _as_float(p, "Bernoulli p")
        if not 0.0 <= self.p <= 1.0:
            raise DistributionError(f"Bernoulli p must be in [0, 1], got {self.p}")

    def sample(self, rng: random.Random) -> bool:
        return rng.random() < self.p

    def log_prob(self, value: Value) -> float:
        if not isinstance(value, bool):
            # 0/1 are accepted for interoperability with numeric code.
            if value in (0, 1):
                value = bool(value)
            else:
                return NEG_INF
        p = self.p if value else 1.0 - self.p
        return math.log(p) if p > 0.0 else NEG_INF

    def mean(self) -> float:
        return self.p

    def variance(self) -> float:
        return self.p * (1.0 - self.p)

    def enumerate_support(self, tol: float = 0.0) -> Iterator[Tuple[Value, float]]:
        if self.p < 1.0:
            yield False, 1.0 - self.p
        if self.p > 0.0:
            yield True, self.p

    def __repr__(self) -> str:
        return f"Bernoulli({self.p})"


@register("Categorical")
class Categorical(Distribution):
    """``Categorical(p0, p1, ..., pk)`` — integer draw in ``0..k`` with
    the given (normalized) probabilities."""

    discrete = True

    def __init__(self, *probs: Value) -> None:
        if not probs:
            raise DistributionError("Categorical needs at least one probability")
        ps = [_as_float(p, "Categorical probability") for p in probs]
        if any(p < 0.0 for p in ps):
            raise DistributionError("Categorical probabilities must be >= 0")
        total = sum(ps)
        if total <= 0.0:
            raise DistributionError("Categorical probabilities sum to zero")
        self.probs = [p / total for p in ps]

    def sample(self, rng: random.Random) -> int:
        u = rng.random()
        acc = 0.0
        for i, p in enumerate(self.probs):
            acc += p
            if u < acc:
                return i
        return len(self.probs) - 1

    def log_prob(self, value: Value) -> float:
        if isinstance(value, bool) or not isinstance(value, int):
            return NEG_INF
        if 0 <= value < len(self.probs) and self.probs[value] > 0.0:
            return math.log(self.probs[value])
        return NEG_INF

    def mean(self) -> float:
        return sum(i * p for i, p in enumerate(self.probs))

    def variance(self) -> float:
        m = self.mean()
        return sum(p * (i - m) ** 2 for i, p in enumerate(self.probs))

    def enumerate_support(self, tol: float = 0.0) -> Iterator[Tuple[Value, float]]:
        for i, p in enumerate(self.probs):
            if p > 0.0:
                yield i, p

    def __repr__(self) -> str:
        return f"Categorical({', '.join(map(str, self.probs))})"


@register("DiscreteUniform")
class DiscreteUniform(Distribution):
    """``DiscreteUniform(lo, hi)`` — uniform integer in ``[lo, hi]``
    inclusive."""

    discrete = True

    def __init__(self, lo: Value, hi: Value) -> None:
        self.lo = int(_as_float(lo, "DiscreteUniform lo"))
        self.hi = int(_as_float(hi, "DiscreteUniform hi"))
        if self.hi < self.lo:
            raise DistributionError(
                f"DiscreteUniform needs lo <= hi, got [{self.lo}, {self.hi}]"
            )

    @property
    def _n(self) -> int:
        return self.hi - self.lo + 1

    def sample(self, rng: random.Random) -> int:
        return rng.randint(self.lo, self.hi)

    def log_prob(self, value: Value) -> float:
        if isinstance(value, bool) or not isinstance(value, int):
            return NEG_INF
        if self.lo <= value <= self.hi:
            return -math.log(self._n)
        return NEG_INF

    def mean(self) -> float:
        return (self.lo + self.hi) / 2.0

    def variance(self) -> float:
        return (self._n ** 2 - 1) / 12.0

    def enumerate_support(self, tol: float = 0.0) -> Iterator[Tuple[Value, float]]:
        p = 1.0 / self._n
        for value in range(self.lo, self.hi + 1):
            yield value, p

    def __repr__(self) -> str:
        return f"DiscreteUniform({self.lo}, {self.hi})"


@register("Binomial")
class Binomial(Distribution):
    """``Binomial(n, p)`` — number of successes in ``n`` Bernoulli(p)
    trials."""

    discrete = True

    def __init__(self, n: Value, p: Value) -> None:
        self.n = int(_as_float(n, "Binomial n"))
        self.p = _as_float(p, "Binomial p")
        if self.n < 0:
            raise DistributionError(f"Binomial n must be >= 0, got {self.n}")
        if not 0.0 <= self.p <= 1.0:
            raise DistributionError(f"Binomial p must be in [0, 1], got {self.p}")

    def sample(self, rng: random.Random) -> int:
        return sum(1 for _ in range(self.n) if rng.random() < self.p)

    def log_prob(self, value: Value) -> float:
        if isinstance(value, bool) or not isinstance(value, int):
            return NEG_INF
        if not 0 <= value <= self.n:
            return NEG_INF
        if self.p == 0.0:
            return 0.0 if value == 0 else NEG_INF
        if self.p == 1.0:
            return 0.0 if value == self.n else NEG_INF
        return (
            math.lgamma(self.n + 1)
            - math.lgamma(value + 1)
            - math.lgamma(self.n - value + 1)
            + value * math.log(self.p)
            + (self.n - value) * math.log1p(-self.p)
        )

    def mean(self) -> float:
        return self.n * self.p

    def variance(self) -> float:
        return self.n * self.p * (1.0 - self.p)

    def enumerate_support(self, tol: float = 0.0) -> Iterator[Tuple[Value, float]]:
        for k in range(self.n + 1):
            p = self.prob(k)
            if p > 0.0:
                yield k, p

    def __repr__(self) -> str:
        return f"Binomial({self.n}, {self.p})"


@register("Poisson")
class Poisson(Distribution):
    """``Poisson(rate)`` — counts with the given mean rate."""

    discrete = True

    def __init__(self, rate: Value) -> None:
        self.rate = _as_float(rate, "Poisson rate")
        if self.rate < 0.0:
            raise DistributionError(f"Poisson rate must be >= 0, got {self.rate}")

    def sample(self, rng: random.Random) -> int:
        # Knuth's method; adequate for the modest rates in our models.
        threshold = math.exp(-self.rate)
        k = 0
        acc = rng.random()
        while acc > threshold:
            k += 1
            acc *= rng.random()
        return k

    def log_prob(self, value: Value) -> float:
        if isinstance(value, bool) or not isinstance(value, int) or value < 0:
            return NEG_INF
        if self.rate == 0.0:
            return 0.0 if value == 0 else NEG_INF
        return value * math.log(self.rate) - self.rate - math.lgamma(value + 1)

    def mean(self) -> float:
        return self.rate

    def variance(self) -> float:
        return self.rate

    def enumerate_support(self, tol: float = 1e-12) -> Iterator[Tuple[Value, float]]:
        if tol <= 0.0:
            raise DistributionError(
                "Poisson has infinite support; enumerate with tol > 0"
            )
        k = 0
        remaining = 1.0
        while remaining > tol:
            p = self.prob(k)
            if p > 0.0:
                yield k, p
            remaining -= p
            k += 1

    def __repr__(self) -> str:
        return f"Poisson({self.rate})"


@register("Geometric")
class Geometric(Distribution):
    """``Geometric(p)`` — number of failures before the first success of
    a Bernoulli(p) sequence (support ``0, 1, 2, ...``)."""

    discrete = True

    def __init__(self, p: Value) -> None:
        self.p = _as_float(p, "Geometric p")
        if not 0.0 < self.p <= 1.0:
            raise DistributionError(f"Geometric p must be in (0, 1], got {self.p}")

    def sample(self, rng: random.Random) -> int:
        k = 0
        while rng.random() >= self.p:
            k += 1
        return k

    def log_prob(self, value: Value) -> float:
        if isinstance(value, bool) or not isinstance(value, int) or value < 0:
            return NEG_INF
        if self.p == 1.0:
            return 0.0 if value == 0 else NEG_INF
        return value * math.log1p(-self.p) + math.log(self.p)

    def mean(self) -> float:
        return (1.0 - self.p) / self.p

    def variance(self) -> float:
        return (1.0 - self.p) / self.p ** 2

    def enumerate_support(self, tol: float = 1e-12) -> Iterator[Tuple[Value, float]]:
        if tol <= 0.0 and self.p < 1.0:
            raise DistributionError(
                "Geometric has infinite support; enumerate with tol > 0"
            )
        k = 0
        remaining = 1.0
        while remaining > tol:
            p = self.prob(k)
            yield k, p
            remaining -= p
            k += 1
            if self.p == 1.0:
                break

    def __repr__(self) -> str:
        return f"Geometric({self.p})"
