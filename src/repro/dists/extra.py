"""Additional distributions beyond the paper's core set: Laplace,
LogNormal, StudentT, and NegativeBinomial — common in PPL workloads
(robust regression, skill models with heavy tails)."""

from __future__ import annotations

import math
import random
from typing import Iterator, Tuple

from .base import (
    Distribution,
    DistributionError,
    NEG_INF,
    Value,
    _as_float,
    register,
)

__all__ = ["Laplace", "LogNormal", "StudentT", "NegativeBinomial"]

_LOG_2PI = math.log(2.0 * math.pi)


@register("Laplace")
class Laplace(Distribution):
    """``Laplace(loc, scale)`` — the double exponential."""

    discrete = False

    def __init__(self, loc: Value, scale: Value) -> None:
        self.loc = _as_float(loc, "Laplace loc")
        self.scale = _as_float(scale, "Laplace scale")
        if self.scale <= 0.0:
            raise DistributionError(f"Laplace scale must be > 0, got {self.scale}")

    def sample(self, rng: random.Random) -> float:
        u = rng.random() - 0.5
        return self.loc - self.scale * math.copysign(
            math.log1p(-2.0 * abs(u)), u
        )

    def log_prob(self, value: Value) -> float:
        x = _as_float(value, "Laplace value")
        return -abs(x - self.loc) / self.scale - math.log(2.0 * self.scale)

    def mean(self) -> float:
        return self.loc

    def variance(self) -> float:
        return 2.0 * self.scale ** 2

    def __repr__(self) -> str:
        return f"Laplace({self.loc}, {self.scale})"


@register("LogNormal")
class LogNormal(Distribution):
    """``LogNormal(mu, sigma2)`` — ``exp(N(mu, sigma2))``."""

    discrete = False

    def __init__(self, mu: Value, sigma2: Value) -> None:
        self.mu = _as_float(mu, "LogNormal mu")
        self.sigma2 = _as_float(sigma2, "LogNormal sigma2")
        if self.sigma2 <= 0.0:
            raise DistributionError(
                f"LogNormal variance must be > 0, got {self.sigma2}"
            )

    def sample(self, rng: random.Random) -> float:
        return math.exp(rng.gauss(self.mu, math.sqrt(self.sigma2)))

    def log_prob(self, value: Value) -> float:
        x = _as_float(value, "LogNormal value")
        if x <= 0.0:
            return NEG_INF
        log_x = math.log(x)
        return (
            -0.5 * (_LOG_2PI + math.log(self.sigma2))
            - (log_x - self.mu) ** 2 / (2.0 * self.sigma2)
            - log_x
        )

    def mean(self) -> float:
        return math.exp(self.mu + self.sigma2 / 2.0)

    def variance(self) -> float:
        return (math.exp(self.sigma2) - 1.0) * math.exp(
            2.0 * self.mu + self.sigma2
        )

    def __repr__(self) -> str:
        return f"LogNormal({self.mu}, {self.sigma2})"


@register("StudentT")
class StudentT(Distribution):
    """``StudentT(df)`` — standard Student's t with ``df`` degrees of
    freedom."""

    discrete = False

    def __init__(self, df: Value) -> None:
        self.df = _as_float(df, "StudentT df")
        if self.df <= 0.0:
            raise DistributionError(f"StudentT df must be > 0, got {self.df}")

    def sample(self, rng: random.Random) -> float:
        # Ratio of a normal and a chi-squared draw.
        z = rng.gauss(0.0, 1.0)
        chi2 = 2.0 * rng.gammavariate(self.df / 2.0, 1.0)
        return z / math.sqrt(chi2 / self.df)

    def log_prob(self, value: Value) -> float:
        x = _as_float(value, "StudentT value")
        v = self.df
        return (
            math.lgamma((v + 1.0) / 2.0)
            - math.lgamma(v / 2.0)
            - 0.5 * math.log(v * math.pi)
            - (v + 1.0) / 2.0 * math.log1p(x * x / v)
        )

    def mean(self) -> float:
        if self.df <= 1.0:
            raise DistributionError("StudentT mean undefined for df <= 1")
        return 0.0

    def variance(self) -> float:
        if self.df <= 2.0:
            raise DistributionError("StudentT variance undefined for df <= 2")
        return self.df / (self.df - 2.0)

    def __repr__(self) -> str:
        return f"StudentT({self.df})"


@register("NegativeBinomial")
class NegativeBinomial(Distribution):
    """``NegativeBinomial(r, p)`` — failures before the ``r``-th
    success of a Bernoulli(p) sequence."""

    discrete = True

    def __init__(self, r: Value, p: Value) -> None:
        self.r = _as_float(r, "NegativeBinomial r")
        self.p = _as_float(p, "NegativeBinomial p")
        if self.r <= 0.0:
            raise DistributionError(
                f"NegativeBinomial r must be > 0, got {self.r}"
            )
        if not 0.0 < self.p <= 1.0:
            raise DistributionError(
                f"NegativeBinomial p must be in (0, 1], got {self.p}"
            )

    def sample(self, rng: random.Random) -> int:
        # Gamma-Poisson mixture (works for real r).
        if self.p == 1.0:
            return 0
        rate = rng.gammavariate(self.r, (1.0 - self.p) / self.p)
        # Knuth Poisson draw.
        threshold = math.exp(-rate)
        k = 0
        acc = rng.random()
        while acc > threshold:
            k += 1
            acc *= rng.random()
        return k

    def log_prob(self, value: Value) -> float:
        if isinstance(value, bool) or not isinstance(value, int) or value < 0:
            return NEG_INF
        if self.p == 1.0:
            return 0.0 if value == 0 else NEG_INF
        return (
            math.lgamma(value + self.r)
            - math.lgamma(self.r)
            - math.lgamma(value + 1)
            + self.r * math.log(self.p)
            + value * math.log1p(-self.p)
        )

    def mean(self) -> float:
        return self.r * (1.0 - self.p) / self.p

    def variance(self) -> float:
        return self.r * (1.0 - self.p) / self.p ** 2

    def enumerate_support(self, tol: float = 1e-12) -> Iterator[Tuple[Value, float]]:
        if tol <= 0.0 and self.p < 1.0:
            raise DistributionError(
                "NegativeBinomial has infinite support; enumerate with tol > 0"
            )
        k = 0
        remaining = 1.0
        while remaining > tol:
            prob = self.prob(k)
            yield k, prob
            remaining -= prob
            k += 1
            if self.p == 1.0:
                break

    def __repr__(self) -> str:
        return f"NegativeBinomial({self.r}, {self.p})"
