"""Probability distributions available to PROB programs.

Importing this package registers all built-in distributions; new ones
can be added with the :func:`repro.dists.base.register` decorator.
"""

from .base import (
    Distribution,
    DistributionError,
    NEG_INF,
    Value,
    make_distribution,
    register,
    registered_distributions,
)
from .continuous import Beta, Exponential, Gamma, Gaussian, Uniform
from .extra import Laplace, LogNormal, NegativeBinomial, StudentT
from .discrete import (
    Bernoulli,
    Binomial,
    Categorical,
    DiscreteUniform,
    Geometric,
    Poisson,
)

__all__ = [
    "Distribution",
    "DistributionError",
    "NEG_INF",
    "Value",
    "make_distribution",
    "register",
    "registered_distributions",
    "Bernoulli",
    "Categorical",
    "DiscreteUniform",
    "Binomial",
    "Poisson",
    "Geometric",
    "Gaussian",
    "Uniform",
    "Gamma",
    "Beta",
    "Exponential",
    "Laplace",
    "LogNormal",
    "StudentT",
    "NegativeBinomial",
]
