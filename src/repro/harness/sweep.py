"""Parameter sweeps: run a benchmark family across a parameter grid
and tabulate a metric — the machinery behind the speedup-vs-sliceable-
fraction ablation.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..core.ast import Program
from ..inference.base import Engine
from .runner import SpeedupRow, measure_speedup

__all__ = ["SweepPoint", "sweep_speedup", "format_sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """One grid point of a speedup sweep."""

    parameter: float
    row: SpeedupRow

    @property
    def speedup(self) -> Optional[float]:
        return self.row.speedup

    @property
    def work_speedup(self) -> Optional[float]:
        return self.row.work_speedup


def sweep_speedup(
    name: str,
    engine_factory: Callable[[], Engine],
    program_for: Callable[[float], Program],
    parameters: Sequence[float],
    runner: Optional[object] = None,
    cache: Optional[object] = None,
    recorder: Optional[object] = None,
) -> List[SweepPoint]:
    """Measure the slicing speedup at every parameter value.

    ``program_for(p)`` builds the benchmark instance for parameter
    ``p``; a fresh engine is created per point so seeds stay aligned.
    ``runner``/``cache`` (see :mod:`repro.runtime`) parallelize each
    point's engine runs and de-duplicate slicing work across repeated
    sweeps of the same grid.  ``recorder`` (a
    :class:`repro.obs.TraceRecorder`) spans each grid point and folds
    the pipeline stage timings into every row.
    """
    points: List[SweepPoint] = []
    for p in parameters:
        ctx = (
            recorder.span(f"sweep[{name}]", parameter=p)
            if recorder is not None and getattr(recorder, "enabled", False)
            else nullcontext()
        )
        with ctx:
            row = measure_speedup(
                f"{name}[{p}]",
                "sweep",
                engine_factory(),
                program_for(p),
                runner=runner,
                cache=cache,
                recorder=recorder,
            )
        points.append(SweepPoint(p, row))
    return points


def format_sweep(
    points: Sequence[SweepPoint], parameter_name: str = "parameter"
) -> str:
    """Render a sweep as an aligned table."""
    lines = [f"{parameter_name:>12}  {'time speedup':>12}  {'work speedup':>12}"]
    for pt in points:
        time_s = f"{pt.speedup:.2f}x" if pt.speedup else "-"
        work_s = f"{pt.work_speedup:.2f}x" if pt.work_speedup else "-"
        lines.append(f"{pt.parameter:>12.3g}  {time_s:>12}  {work_s:>12}")
    return "\n".join(lines)
