"""Plain-text report rendering for the benchmark harness."""

from __future__ import annotations

from typing import Iterable, List, Sequence

from ..metrics.convergence import ConvergenceCurve
from .runner import RunStatus, SpeedupRow

__all__ = ["format_speedup_table", "format_convergence_table", "format_table"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[str]]) -> str:
    """Render an aligned plain-text table."""
    all_rows: List[Sequence[str]] = [list(headers)] + [list(r) for r in rows]
    widths = [
        max(len(str(row[i])) for row in all_rows)
        for i in range(len(headers))
    ]
    lines = []
    for idx, row in enumerate(all_rows):
        line = "  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row))
        lines.append(line.rstrip())
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _status_cell(row: SpeedupRow) -> str:
    if row.original.status is RunStatus.UNSUPPORTED:
        return "n/a (unsupported)"
    if row.original.status is RunStatus.TIMEOUT and row.sliced.ok:
        speedup = row.speedup
        return f">{speedup:.1f}x (orig timeout)" if speedup else "orig timeout"
    speedup = row.speedup
    if speedup is None:
        return f"{row.original.status.value}/{row.sliced.status.value}"
    return f"{speedup:.2f}x"


def format_speedup_table(rows: Iterable[SpeedupRow]) -> str:
    """Render Figure-18 rows: benchmark x engine -> speedup."""
    body = []
    for row in rows:
        work = row.work_speedup
        body.append(
            [
                row.benchmark,
                row.engine,
                _status_cell(row),
                f"{work:.2f}x" if work is not None else "-",
                f"{row.slice_result.transformed_size}",
                f"{row.slice_result.sliced_size}",
                f"{row.slicing_seconds * 1000:.1f}ms",
            ]
        )
    return format_table(
        [
            "benchmark",
            "engine",
            "time speedup",
            "work speedup",
            "stmts(orig)",
            "stmts(sliced)",
            "slice time",
        ],
        body,
    )


def format_convergence_table(curves: Sequence[ConvergenceCurve]) -> str:
    """Render Figure-19 curves side by side (KL per checkpoint)."""
    checkpoints = sorted({n for c in curves for n, _ in c.points})
    headers = ["samples"] + [c.label for c in curves]
    body = []
    for n in checkpoints:
        row = [str(n)]
        for c in curves:
            try:
                row.append(f"{c.kl_at(n):.5f}")
            except KeyError:
                row.append("-")
        body.append(row)
    return format_table(headers, body)
