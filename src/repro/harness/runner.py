"""The Figure-18 measurement harness: run an engine on a program and
its slice, and report the speedup.

Timeouts and unsupported features are first-class outcomes (the paper
reports "Church does not terminate" and "Church does not support
Gamma" as missing/qualified bars), so :class:`EngineRun` captures a
status instead of raising.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional

from ..core.ast import Program
from ..inference.base import (
    Engine,
    InferenceError,
    InferenceResult,
    InferenceTimeout,
    UnsupportedProgramError,
)
from ..obs.recorder import use_recorder
from ..transforms.pipeline import SliceResult, sli

__all__ = ["RunStatus", "EngineRun", "SpeedupRow", "run_engine", "measure_speedup"]


class RunStatus(Enum):
    OK = "ok"
    TIMEOUT = "timeout"
    UNSUPPORTED = "unsupported"
    FAILED = "failed"


@dataclass
class EngineRun:
    """One engine invocation on one program."""

    status: RunStatus
    elapsed_seconds: float
    result: Optional[InferenceResult] = None
    message: str = ""

    @property
    def ok(self) -> bool:
        return self.status is RunStatus.OK


@dataclass
class SpeedupRow:
    """One Figure-18 bar: a benchmark under one engine."""

    benchmark: str
    engine: str
    original: EngineRun
    sliced: EngineRun
    slice_result: SliceResult
    slicing_seconds: float
    #: Wall seconds per pipeline stage (span name -> total), folded in
    #: from the ``recorder=`` passed to :func:`measure_speedup`; empty
    #: when no recorder was attached.
    stage_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def speedup(self) -> Optional[float]:
        """Wall-clock speedup, or None when either side is not OK.

        A timeout on the original with a successful sliced run (the
        paper's Church-on-HIV/Halo situation) reports the *lower
        bound* budget/sliced-time.
        """
        if self.sliced.ok and self.original.ok:
            if self.sliced.elapsed_seconds <= 0.0:
                return None
            return self.original.elapsed_seconds / self.sliced.elapsed_seconds
        if (
            self.sliced.ok
            and self.original.status is RunStatus.TIMEOUT
            and self.sliced.elapsed_seconds > 0.0
        ):
            return self.original.elapsed_seconds / self.sliced.elapsed_seconds
        return None

    @property
    def work_speedup(self) -> Optional[float]:
        """Speedup in deterministic work (statements executed /
        messages passed) — robust to machine noise."""
        if not (self.sliced.ok and self.original.ok):
            return None
        assert self.original.result is not None and self.sliced.result is not None
        orig = self.original.result.statements_executed
        new = self.sliced.result.statements_executed
        if new <= 0:
            return None
        return orig / new


def run_engine(
    engine: Engine,
    program: Program,
    runner: Optional[object] = None,
    recorder: Optional[object] = None,
) -> EngineRun:
    """Run ``engine`` on ``program``, capturing outcome and time.

    ``runner`` (a :class:`repro.runtime.ParallelRunner`) fans the
    engine's sampling work out across workers; ``None`` keeps the
    sequential path.  Engine failures surface identically either way —
    a worker's :class:`InferenceTimeout` / :class:`InferenceError`
    propagates through the pool and is captured here as a status.

    ``recorder`` (a :class:`repro.obs.TraceRecorder`) is installed as
    the ambient recorder for the duration of the run, capturing engine
    progress metrics, compile spans, and (under a parallel runner)
    per-worker spans; ``None`` leaves the ambient recorder in place.
    """
    ctx = nullcontext() if recorder is None else use_recorder(recorder)
    start = time.perf_counter()
    try:
        with ctx:
            if runner is not None:
                result = runner.run(engine, program)  # type: ignore[attr-defined]
            else:
                result = engine.infer(program)
    except InferenceTimeout as exc:
        return EngineRun(
            RunStatus.TIMEOUT, time.perf_counter() - start, message=str(exc)
        )
    except UnsupportedProgramError as exc:
        return EngineRun(
            RunStatus.UNSUPPORTED, time.perf_counter() - start, message=str(exc)
        )
    except InferenceError as exc:
        return EngineRun(
            RunStatus.FAILED, time.perf_counter() - start, message=str(exc)
        )
    return EngineRun(RunStatus.OK, time.perf_counter() - start, result=result)


def measure_speedup(
    benchmark_name: str,
    engine_name: str,
    engine: Engine,
    program: Program,
    simplify: bool = False,
    runner: Optional[object] = None,
    cache: Optional[object] = None,
    recorder: Optional[object] = None,
) -> SpeedupRow:
    """Slice ``program``, run the engine on both versions, and package
    the Figure-18 row.

    ``cache`` (a :class:`repro.runtime.ProgramCache`) makes repeated
    measurements of the same program skip the SLI pipeline;
    ``slicing_seconds`` then reports the (near-zero) lookup time, which
    is exactly the setup cost an inference service would pay.
    ``runner`` parallelizes both engine runs.

    The row's ``stage_seconds`` always carries the pass manager's
    per-pass timings (``pass.obs``, ``pass.svf``, ... from
    ``SliceResult.pass_seconds`` — measured directly, no recorder
    required; empty on a cache hit).  ``recorder`` (a
    :class:`repro.obs.TraceRecorder`) additionally captures spans and
    metrics for the whole measurement — compilation, lowering, and
    inference spans are folded into ``stage_seconds`` on top.
    """
    recording = recorder is not None and getattr(recorder, "enabled", False)
    before = recorder.stage_seconds() if recording else {}
    ctx = nullcontext() if recorder is None else use_recorder(recorder)
    with ctx:
        start = time.perf_counter()
        slice_result = sli(program, simplify=simplify, cache=cache)
        slicing_seconds = time.perf_counter() - start
        original = run_engine(engine, program, runner=runner)
        sliced = run_engine(engine, slice_result.sliced, runner=runner)
    # The manager's own per-pass timings (recorder-independent).
    stage_seconds: Dict[str, float] = dict(slice_result.pass_seconds)
    if recording:
        # Only this measurement's share: the recorder may span several
        # rows (a sweep), so diff against the entry snapshot.  Span
        # timings win over the manager's where both exist (same
        # clock, same regions — the values agree to within noise).
        for name, secs in recorder.stage_seconds().items():
            delta = secs - before.get(name, 0.0)
            if delta > 0.0:
                stage_seconds[name] = delta
    return SpeedupRow(
        benchmark=benchmark_name,
        engine=engine_name,
        original=original,
        sliced=sliced,
        slice_result=slice_result,
        slicing_seconds=slicing_seconds,
        stage_seconds=stage_seconds,
    )
