"""Machine-readable benchmark snapshots (``BENCH_pr3.json``).

For every Table-1 benchmark (at ``bench`` scale, so the whole thing
finishes in CI time) this module records, under a
:class:`repro.obs.TraceRecorder`:

* the slice statistics — statement counts before/after and the slice
  *ratio* (sliced / preprocessed, the paper's Table-1 reduction read
  the other way up);
* per-stage pipeline wall times (the pass manager's ``pass.obs`` …
  ``pass.slice`` spans, plus ``ir.lower`` and ``semantics.compile``)
  pulled from the recorded spans;
* compiled-executor MH inference throughput on original vs sliced
  (samples/sec plus the speedup), with acceptance metrics.

Run it directly to (re)generate the repo-root snapshot::

    PYTHONPATH=src python -m repro.harness.bench_json -o BENCH_pr3.json

The JSON shape is stable so future PRs can diff perf trajectories
file-against-file; CI's ``obs-smoke`` job uploads it as an artifact.

``--slicers`` switches to the slicer-arbitration snapshot
(``BENCH_pr9.json``): for every Table-1 benchmark and each slicing
theory in :data:`repro.passes.SLICER_REGISTRY` (``svf`` and ``ab``)
it records kept/dropped node counts per CFG node class (observe /
control / data), the slice-size delta between the theories, whether
the slice passed per-pass verification (seeded interpreter spot-check
plus the bounded exact-distribution check), and compiled-MH
samples/sec on each theory's slice next to the original::

    PYTHONPATH=src python -m repro.harness.bench_json --slicers -o BENCH_pr9.json

``--vectorized`` switches to the array-backend snapshot
(``BENCH_pr7.json``): for every Table-1 benchmark, original *and*
sliced, it sweeps likelihood weighting over batch sizes 1 → 10k on the
closure backend vs ``compiled="numpy"`` and adds a lockstep-chain MH
row, recording samples/sec next to ESS/sec (Kish ESS for weighted
samples, autocorrelation ESS for MH chains)::

    PYTHONPATH=src python -m repro.harness.bench_json --vectorized -o BENCH_pr7.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Any, Dict, List, Optional

from ..inference.base import InferenceError, effective_sample_size
from ..inference.importance import LikelihoodWeighting
from ..inference.mh import MetropolisHastings
from ..models.registry import TABLE1
from ..obs.recorder import TraceRecorder, use_recorder
from ..transforms.pipeline import sli

__all__ = [
    "bench_record",
    "collect_bench_report",
    "write_bench_json",
    "vectorized_record",
    "collect_vectorized_report",
    "write_vectorized_json",
    "health_record",
    "collect_health_report",
    "write_health_json",
    "slicer_record",
    "collect_slicer_report",
    "write_slicer_json",
    "main",
]

#: Pipeline/compile stages folded into each benchmark record.  The
#: ``pass.*`` names are the pass manager's per-pass spans.
STAGES = (
    "sli",
    "pass.obs",
    "pass.svf",
    "pass.ssa",
    "pass.slice",
    "pass.constprop",
    "pass.copyprop",
    "ir.lower",
    "semantics.compile",
)


def bench_record(
    spec: Any, n_samples: int = 400, seed: int = 0
) -> Dict[str, Any]:
    """One benchmark's snapshot (slice stats, stage timings, inference
    throughput on original vs sliced under compiled MH)."""
    program = spec.bench()
    recorder = TraceRecorder()
    with use_recorder(recorder):
        t0 = time.perf_counter()
        result = sli(program)
        slicing_seconds = time.perf_counter() - t0

        def samples_per_sec(target) -> Dict[str, float]:
            engine = MetropolisHastings(
                n_samples=n_samples, burn_in=100, seed=seed, compiled=True
            )
            out = engine.infer(target)
            secs = max(out.elapsed_seconds, 1e-9)
            cell = {
                "samples": len(out.samples),
                "seconds": round(secs, 6),
                "samples_per_sec": round(len(out.samples) / secs, 2),
                "acceptance_rate": round(out.acceptance_rate, 4),
                # Kish ESS counts unweighted MH samples at face value;
                # the autocorrelation ESS is the one that exposes
                # sticky chains (the ROADMAP's "speedup is partly
                # illusory in effective-samples terms").
                "kish_ess": round(_kish_ess(out.weights, len(out.samples)), 2),
            }
            ess = _autocorr_ess(out.samples)
            if ess is not None:
                cell["ess"] = round(ess, 2)
                cell["ess_per_sec"] = round(ess / secs, 2)
            return cell

        original = samples_per_sec(program)
        sliced = samples_per_sec(result.sliced)
    stages = recorder.stage_seconds()
    return {
        "name": spec.name,
        "slice": {
            "original_stmts": result.original_size,
            "preprocessed_stmts": result.transformed_size,
            "sliced_stmts": result.sliced_size,
            "ratio": round(
                result.sliced_size / max(1, result.transformed_size), 4
            ),
            "reduction": round(result.reduction, 4),
            "slicing_seconds": round(slicing_seconds, 6),
        },
        "stages_ms": {
            name: round(stages[name] * 1000, 3)
            for name in STAGES
            if name in stages
        },
        "inference": {
            "engine": "mh-compiled",
            "n_samples": n_samples,
            "original": original,
            "sliced": sliced,
            "speedup": round(
                original["seconds"] / max(sliced["seconds"], 1e-9), 2
            ),
        },
    }


def collect_bench_report(
    n_samples: int = 400, only: Optional[List[str]] = None
) -> Dict[str, Any]:
    """The full ``BENCH_pr3.json`` document."""
    benchmarks = []
    for spec in TABLE1:
        if only and spec.name not in only:
            continue
        benchmarks.append(bench_record(spec, n_samples=n_samples))
    return {
        "schema": "repro-bench/1",
        "pr": 3,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "n_samples": n_samples,
        "benchmarks": benchmarks,
    }


def write_bench_json(
    path: str = "BENCH_pr3.json",
    n_samples: int = 400,
    only: Optional[List[str]] = None,
) -> Dict[str, Any]:
    report = collect_bench_report(n_samples=n_samples, only=only)
    with open(path, "w") as f:
        json.dump(report, f, indent=2, sort_keys=False)
        f.write("\n")
    return report


#: Lockstep chain count for the --vectorized MH row.  The batched
#: kernel pays burn-in once per *step* (all chains advance together),
#: so it needs wide batches to amortize per-step array overhead; 256
#: chains is past the crossover on every Table-1 model.
MH_BATCH_CHAINS = 256

#: Batch sizes the array-backend sweep measures.  At 1 the numpy
#: backend pays pure overhead; the crossover and the asymptotic win
#: both live inside this range.
VECTORIZED_BATCHES = (1, 10, 100, 1_000, 10_000)


def _kish_ess(weights: Optional[List[float]], n: int) -> float:
    """Kish effective sample size ``(Σw)² / Σw²`` of an importance
    sample; unweighted samples count at face value."""
    if not weights:
        return float(n)
    from ..metrics.online import kish_ess

    return kish_ess(weights)


def _autocorr_ess(samples: List[Any]) -> Optional[float]:
    """Autocorrelation ESS of a sample list, or ``None`` for
    non-numeric (e.g. tuple-valued) samples."""
    try:
        floats = [float(s) for s in samples]
    except (TypeError, ValueError):
        return None
    return effective_sample_size(floats)


def _throughput_cell(engine, program) -> Dict[str, Any]:
    """One backend × batch measurement: samples/sec and ESS/sec (Kish
    for weighted engines, autocorrelation for MCMC chains).  Engine
    failures (e.g. likelihood weighting finding zero mass on a
    hard-observe model at small n) are recorded, not raised."""
    try:
        out = engine.infer(program)
    except InferenceError as exc:
        return {"error": str(exc)}
    secs = max(out.elapsed_seconds, 1e-9)
    if out.weights is not None:
        ess = _kish_ess(out.weights, len(out.samples))
    else:
        ess = effective_sample_size([float(s) for s in out.samples])
    return {
        "samples": len(out.samples),
        "seconds": round(secs, 6),
        "samples_per_sec": round(len(out.samples) / secs, 2),
        "ess": round(ess, 2),
        "ess_per_sec": round(ess / secs, 2),
    }


def _speedup(closure: Dict[str, Any], numpy_cell: Dict[str, Any]) -> Optional[float]:
    if "error" in closure or "error" in numpy_cell:
        return None
    return round(
        numpy_cell["samples_per_sec"] / max(closure["samples_per_sec"], 1e-9), 2
    )


def _vectorized_variant(
    program: Any, batch_sizes: tuple, seed: int, mh_samples: int
) -> Dict[str, Any]:
    """The LW batch sweep plus the MH lockstep row for one program."""
    # Warm the memoized vectorized compile (and the closure compile) so
    # the sweep measures steady-state throughput, not one-time codegen.
    try:
        LikelihoodWeighting(n_samples=1, seed=seed, compiled="numpy").infer(program)
    except InferenceError:
        pass  # zero mass at n=1 still compiled everything we need
    rows = []
    for batch in batch_sizes:
        closure = _throughput_cell(
            LikelihoodWeighting(n_samples=batch, seed=seed, compiled=True), program
        )
        numpy_cell = _throughput_cell(
            LikelihoodWeighting(n_samples=batch, seed=seed, compiled="numpy"),
            program,
        )
        rows.append(
            {
                "batch": batch,
                "closure": closure,
                "numpy": numpy_cell,
                "speedup": _speedup(closure, numpy_cell),
            }
        )
    mh_closure = _throughput_cell(
        MetropolisHastings(
            n_samples=mh_samples, burn_in=100, seed=seed, compiled=True
        ),
        program,
    )
    mh_numpy = _throughput_cell(
        MetropolisHastings(
            n_samples=mh_samples,
            burn_in=100,
            seed=seed,
            compiled="numpy",
            batch_chains=MH_BATCH_CHAINS,
        ),
        program,
    )
    return {
        "lw": {"engine": "likelihood-weighting", "rows": rows},
        "mh": {
            "engine": "mh",
            "n_samples": mh_samples,
            "closure": mh_closure,
            "numpy": mh_numpy,
            "speedup": _speedup(mh_closure, mh_numpy),
        },
    }


def vectorized_record(
    spec: Any,
    batch_sizes: tuple = VECTORIZED_BATCHES,
    seed: int = 0,
    mh_samples: int = 4_000,
) -> Dict[str, Any]:
    """One benchmark's array-backend snapshot, original and sliced."""
    program = spec.bench()
    sliced = sli(program).sliced
    return {
        "name": spec.name,
        "variants": {
            "original": _vectorized_variant(program, batch_sizes, seed, mh_samples),
            "sliced": _vectorized_variant(sliced, batch_sizes, seed, mh_samples),
        },
    }


def collect_vectorized_report(
    batch_sizes: tuple = VECTORIZED_BATCHES,
    seed: int = 0,
    mh_samples: int = 4_000,
    only: Optional[List[str]] = None,
) -> Dict[str, Any]:
    """The full ``BENCH_pr7.json`` document."""
    benchmarks = []
    for spec in TABLE1:
        if only and spec.name not in only:
            continue
        benchmarks.append(
            vectorized_record(
                spec, batch_sizes=batch_sizes, seed=seed, mh_samples=mh_samples
            )
        )
    return {
        "schema": "repro-bench-vectorized/1",
        "pr": 7,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "batch_sizes": list(batch_sizes),
        "mh_samples": mh_samples,
        "benchmarks": benchmarks,
    }


def write_vectorized_json(
    path: str = "BENCH_pr7.json",
    batch_sizes: tuple = VECTORIZED_BATCHES,
    seed: int = 0,
    mh_samples: int = 4_000,
    only: Optional[List[str]] = None,
) -> Dict[str, Any]:
    report = collect_vectorized_report(
        batch_sizes=batch_sizes, seed=seed, mh_samples=mh_samples, only=only
    )
    with open(path, "w") as f:
        json.dump(report, f, indent=2, sort_keys=False)
        f.write("\n")
    return report


def _health_cell(target: Any, n_samples: int, seed: int) -> Dict[str, Any]:
    """One compiled-MH run under a live SnapshotRecorder, with the
    health panel's verdict folded into the throughput cell."""
    from ..obs.live import SnapshotRecorder

    recorder = SnapshotRecorder(inner=TraceRecorder(), cadence=0.0)
    engine = MetropolisHastings(
        n_samples=n_samples, burn_in=100, seed=seed, compiled=True
    )
    with use_recorder(recorder):
        out = engine.infer(target)
    recorder.publish()
    report = recorder.health.finalize(out)
    secs = max(out.elapsed_seconds, 1e-9)
    cell: Dict[str, Any] = {
        "samples": len(out.samples),
        "seconds": round(secs, 6),
        "samples_per_sec": round(len(out.samples) / secs, 2),
        "acceptance_rate": round(out.acceptance_rate, 4),
        "kish_ess": round(_kish_ess(out.weights, len(out.samples)), 2),
    }
    ess = _autocorr_ess(out.samples)
    if ess is not None:
        cell["ess"] = round(ess, 2)
        cell["ess_per_sec"] = round(ess / secs, 2)
    cell["health"] = {
        "clean": report.clean,
        "n_snapshots": report.n_snapshots,
        "warnings": [
            {
                "kind": w.kind,
                "source": w.source,
                "severity": w.severity,
                "message": w.message,
            }
            for w in report.warnings
        ],
    }
    return cell


def health_record(
    spec: Any, n_samples: int = 400, seed: int = 0
) -> Dict[str, Any]:
    """One benchmark's health snapshot: compiled MH on original vs
    sliced, each under the full live-telemetry + monitor stack."""
    program = spec.bench()
    sliced = sli(program).sliced
    return {
        "name": spec.name,
        "engine": "mh-compiled",
        "original": _health_cell(program, n_samples, seed),
        "sliced": _health_cell(sliced, n_samples, seed),
    }


def collect_health_report(
    n_samples: int = 400, seed: int = 0, only: Optional[List[str]] = None
) -> Dict[str, Any]:
    """The full ``BENCH_pr8.json`` document."""
    benchmarks = []
    for spec in TABLE1:
        if only and spec.name not in only:
            continue
        benchmarks.append(health_record(spec, n_samples=n_samples, seed=seed))
    return {
        "schema": "repro-bench-health/1",
        "pr": 8,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "n_samples": n_samples,
        "benchmarks": benchmarks,
    }


def write_health_json(
    path: str = "BENCH_pr8.json",
    n_samples: int = 400,
    seed: int = 0,
    only: Optional[List[str]] = None,
) -> Dict[str, Any]:
    report = collect_health_report(n_samples=n_samples, seed=seed, only=only)
    with open(path, "w") as f:
        json.dump(report, f, indent=2, sort_keys=False)
        f.write("\n")
    return report


#: Slicing theories the --slicers snapshot arbitrates.
SLICER_NAMES = ("svf", "ab")


def _mh_cell(target: Any, n_samples: int, seed: int) -> Dict[str, Any]:
    """Compiled-MH throughput on ``target`` (same shape as the default
    snapshot's cells, minus the health panel)."""
    engine = MetropolisHastings(
        n_samples=n_samples, burn_in=100, seed=seed, compiled=True
    )
    try:
        out = engine.infer(target)
    except InferenceError as exc:
        return {"error": str(exc)}
    secs = max(out.elapsed_seconds, 1e-9)
    cell: Dict[str, Any] = {
        "samples": len(out.samples),
        "seconds": round(secs, 6),
        "samples_per_sec": round(len(out.samples) / secs, 2),
        "acceptance_rate": round(out.acceptance_rate, 4),
    }
    ess = _autocorr_ess(out.samples)
    if ess is not None:
        cell["ess"] = round(ess, 2)
        cell["ess_per_sec"] = round(ess / secs, 2)
    return cell


def _slicer_cell(
    program: Any, slicer: str, n_samples: int, seed: int
) -> Dict[str, Any]:
    """One theory's verdict on one benchmark: sizes, kept/dropped node
    classes, the per-pass verification outcome, and compiled-MH
    throughput on the slice."""
    from ..passes import PassVerificationError
    from ..transforms.pipeline import node_class_counts

    t0 = time.perf_counter()
    try:
        result = sli(
            program, slicer=slicer, verify=True, spot_check_seeds=(0, 1, 2)
        )
        verified = True
        verify_error = None
    except PassVerificationError as exc:
        verified = False
        verify_error = str(exc)
        result = sli(program, slicer=slicer)
    slicing_seconds = time.perf_counter() - t0
    kept = node_class_counts(result.sliced.body)
    total = node_class_counts(result.transformed.body)
    cell: Dict[str, Any] = {
        "transformed_stmts": result.transformed_size,
        "sliced_stmts": result.sliced_size,
        "ratio": round(
            result.sliced_size / max(1, result.transformed_size), 4
        ),
        "kept": kept,
        "dropped": {k: max(0, total[k] - kept[k]) for k in kept},
        "verified": verified,
        "slicing_seconds": round(slicing_seconds, 6),
        "inference": _mh_cell(result.sliced, n_samples, seed),
    }
    if verify_error is not None:
        cell["verify_error"] = verify_error
    return cell


def slicer_record(
    spec: Any, n_samples: int = 400, seed: int = 0
) -> Dict[str, Any]:
    """One benchmark's slicer-arbitration snapshot: both theories'
    slices of the same program, side by side."""
    program = spec.bench()
    slicers = {
        name: _slicer_cell(program, name, n_samples, seed)
        for name in SLICER_NAMES
    }
    return {
        "name": spec.name,
        "original_stmts": _original_size(program),
        "original_inference": _mh_cell(program, n_samples, seed),
        "slicers": slicers,
        "delta": {
            "sliced_stmts": slicers["ab"]["sliced_stmts"]
            - slicers["svf"]["sliced_stmts"]
        },
    }


def _original_size(program: Any) -> int:
    from ..core.ast import statement_count

    return statement_count(program.body)


def collect_slicer_report(
    n_samples: int = 400, seed: int = 0, only: Optional[List[str]] = None
) -> Dict[str, Any]:
    """The full ``BENCH_pr9.json`` document."""
    benchmarks = []
    for spec in TABLE1:
        if only and spec.name not in only:
            continue
        benchmarks.append(slicer_record(spec, n_samples=n_samples, seed=seed))
    return {
        "schema": "repro-bench-slicers/1",
        "pr": 9,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "n_samples": n_samples,
        "slicers": list(SLICER_NAMES),
        "benchmarks": benchmarks,
    }


def write_slicer_json(
    path: str = "BENCH_pr9.json",
    n_samples: int = 400,
    seed: int = 0,
    only: Optional[List[str]] = None,
) -> Dict[str, Any]:
    report = collect_slicer_report(n_samples=n_samples, seed=seed, only=only)
    with open(path, "w") as f:
        json.dump(report, f, indent=2, sort_keys=False)
        f.write("\n")
    return report


def _print_slicers(report: Dict[str, Any]) -> None:
    for bench in report["benchmarks"]:
        parts = []
        for name in report["slicers"]:
            cell = bench["slicers"][name]
            inf = cell["inference"]
            rate = (
                f"{inf['samples_per_sec']:9.1f}/s"
                if "error" not in inf
                else "n/a"
            )
            flag = "ok" if cell["verified"] else "FAIL"
            parts.append(
                f"{name}={cell['sliced_stmts']}stmts "
                f"[{flag}] {rate}"
            )
        print(
            f"{bench['name']:26s} orig={bench['original_stmts']:4d} "
            + "  ".join(parts)
            + f"  delta={bench['delta']['sliced_stmts']:+d}"
        )


def _print_health(report: Dict[str, Any]) -> None:
    for bench in report["benchmarks"]:
        for variant in ("original", "sliced"):
            cell = bench[variant]
            health = cell["health"]
            verdict = (
                "clean"
                if health["clean"]
                else ",".join(w["kind"] for w in health["warnings"])
            )
            ess = cell.get("ess_per_sec", "n/a")
            print(
                f"{bench['name']:26s} {variant:8s} "
                f"accept={cell['acceptance_rate']:.3f} "
                f"ess/sec={ess} health={verdict}"
            )


def _print_vectorized(report: Dict[str, Any]) -> None:
    for bench in report["benchmarks"]:
        for variant, data in bench["variants"].items():
            top = data["lw"]["rows"][-1]
            if top["speedup"] is None:
                line = f"lw@{top['batch']}: n/a ({'zero mass' if 'error' in top['closure'] or 'error' in top['numpy'] else '?'})"
            else:
                line = (
                    f"lw@{top['batch']}: "
                    f"{top['closure']['samples_per_sec']:10.1f}/s -> "
                    f"{top['numpy']['samples_per_sec']:12.1f}/s "
                    f"({top['speedup']:.1f}x)"
                )
            mh = data["mh"]
            mh_part = (
                f"mh: {mh['speedup']:.1f}x" if mh["speedup"] is not None else "mh: n/a"
            )
            print(f"{bench['name']:26s} {variant:8s} {line}  {mh_part}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness.bench_json",
        description="Write the machine-readable benchmark snapshot.",
    )
    parser.add_argument("-o", "--output", default=None)
    parser.add_argument(
        "--samples", type=int, default=400, help="MH samples per run"
    )
    parser.add_argument(
        "--vectorized",
        action="store_true",
        help="write the array-backend sweep (BENCH_pr7.json) instead",
    )
    parser.add_argument(
        "--batches",
        nargs="*",
        type=int,
        metavar="N",
        help="batch sizes for the --vectorized sweep",
    )
    parser.add_argument(
        "--health",
        action="store_true",
        help=(
            "write the health snapshot (BENCH_pr8.json): compiled MH "
            "under live telemetry with per-benchmark monitor verdicts"
        ),
    )
    parser.add_argument(
        "--slicers",
        action="store_true",
        help=(
            "write the slicer-arbitration snapshot (BENCH_pr9.json): "
            "kept/dropped node classes, verification verdicts, and "
            "compiled-MH throughput per slicing theory (svf vs ab)"
        ),
    )
    parser.add_argument(
        "--only",
        nargs="*",
        metavar="NAME",
        help="restrict to these Table-1 benchmark names",
    )
    args = parser.parse_args(argv)
    if args.slicers:
        output = args.output or "BENCH_pr9.json"
        report = write_slicer_json(
            output, n_samples=args.samples, only=args.only
        )
        _print_slicers(report)
        print(f"wrote {output} ({len(report['benchmarks'])} benchmarks)")
        return 0
    if args.health:
        output = args.output or "BENCH_pr8.json"
        report = write_health_json(
            output, n_samples=args.samples, only=args.only
        )
        _print_health(report)
        print(f"wrote {output} ({len(report['benchmarks'])} benchmarks)")
        return 0
    if args.vectorized:
        output = args.output or "BENCH_pr7.json"
        batches = tuple(args.batches) if args.batches else VECTORIZED_BATCHES
        report = write_vectorized_json(output, batch_sizes=batches, only=args.only)
        _print_vectorized(report)
        print(f"wrote {output} ({len(report['benchmarks'])} benchmarks)")
        return 0
    output = args.output or "BENCH_pr3.json"
    report = write_bench_json(
        output, n_samples=args.samples, only=args.only
    )
    for bench in report["benchmarks"]:
        inf = bench["inference"]
        print(
            f"{bench['name']:28s} ratio={bench['slice']['ratio']:.3f} "
            f"orig={inf['original']['samples_per_sec']:9.1f}/s "
            f"sliced={inf['sliced']['samples_per_sec']:9.1f}/s "
            f"speedup={inf['speedup']:.2f}x"
        )
    print(f"wrote {output} ({len(report['benchmarks'])} benchmarks)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
