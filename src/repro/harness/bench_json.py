"""Machine-readable benchmark snapshots (``BENCH_pr3.json``).

For every Table-1 benchmark (at ``bench`` scale, so the whole thing
finishes in CI time) this module records, under a
:class:`repro.obs.TraceRecorder`:

* the slice statistics — statement counts before/after and the slice
  *ratio* (sliced / preprocessed, the paper's Table-1 reduction read
  the other way up);
* per-stage pipeline wall times (the pass manager's ``pass.obs`` …
  ``pass.slice`` spans, plus ``ir.lower`` and ``semantics.compile``)
  pulled from the recorded spans;
* compiled-executor MH inference throughput on original vs sliced
  (samples/sec plus the speedup), with acceptance metrics.

Run it directly to (re)generate the repo-root snapshot::

    PYTHONPATH=src python -m repro.harness.bench_json -o BENCH_pr3.json

The JSON shape is stable so future PRs can diff perf trajectories
file-against-file; CI's ``obs-smoke`` job uploads it as an artifact.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Any, Dict, List, Optional

from ..inference.mh import MetropolisHastings
from ..models.registry import TABLE1
from ..obs.recorder import TraceRecorder, use_recorder
from ..transforms.pipeline import sli

__all__ = ["bench_record", "collect_bench_report", "write_bench_json", "main"]

#: Pipeline/compile stages folded into each benchmark record.  The
#: ``pass.*`` names are the pass manager's per-pass spans.
STAGES = (
    "sli",
    "pass.obs",
    "pass.svf",
    "pass.ssa",
    "pass.slice",
    "pass.constprop",
    "pass.copyprop",
    "ir.lower",
    "semantics.compile",
)


def bench_record(
    spec: Any, n_samples: int = 400, seed: int = 0
) -> Dict[str, Any]:
    """One benchmark's snapshot (slice stats, stage timings, inference
    throughput on original vs sliced under compiled MH)."""
    program = spec.bench()
    recorder = TraceRecorder()
    with use_recorder(recorder):
        t0 = time.perf_counter()
        result = sli(program)
        slicing_seconds = time.perf_counter() - t0

        def samples_per_sec(target) -> Dict[str, float]:
            engine = MetropolisHastings(
                n_samples=n_samples, burn_in=100, seed=seed, compiled=True
            )
            out = engine.infer(target)
            secs = max(out.elapsed_seconds, 1e-9)
            return {
                "samples": len(out.samples),
                "seconds": round(secs, 6),
                "samples_per_sec": round(len(out.samples) / secs, 2),
                "acceptance_rate": round(out.acceptance_rate, 4),
            }

        original = samples_per_sec(program)
        sliced = samples_per_sec(result.sliced)
    stages = recorder.stage_seconds()
    return {
        "name": spec.name,
        "slice": {
            "original_stmts": result.original_size,
            "preprocessed_stmts": result.transformed_size,
            "sliced_stmts": result.sliced_size,
            "ratio": round(
                result.sliced_size / max(1, result.transformed_size), 4
            ),
            "reduction": round(result.reduction, 4),
            "slicing_seconds": round(slicing_seconds, 6),
        },
        "stages_ms": {
            name: round(stages[name] * 1000, 3)
            for name in STAGES
            if name in stages
        },
        "inference": {
            "engine": "mh-compiled",
            "n_samples": n_samples,
            "original": original,
            "sliced": sliced,
            "speedup": round(
                original["seconds"] / max(sliced["seconds"], 1e-9), 2
            ),
        },
    }


def collect_bench_report(
    n_samples: int = 400, only: Optional[List[str]] = None
) -> Dict[str, Any]:
    """The full ``BENCH_pr3.json`` document."""
    benchmarks = []
    for spec in TABLE1:
        if only and spec.name not in only:
            continue
        benchmarks.append(bench_record(spec, n_samples=n_samples))
    return {
        "schema": "repro-bench/1",
        "pr": 3,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "n_samples": n_samples,
        "benchmarks": benchmarks,
    }


def write_bench_json(
    path: str = "BENCH_pr3.json",
    n_samples: int = 400,
    only: Optional[List[str]] = None,
) -> Dict[str, Any]:
    report = collect_bench_report(n_samples=n_samples, only=only)
    with open(path, "w") as f:
        json.dump(report, f, indent=2, sort_keys=False)
        f.write("\n")
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness.bench_json",
        description="Write the machine-readable benchmark snapshot.",
    )
    parser.add_argument("-o", "--output", default="BENCH_pr3.json")
    parser.add_argument(
        "--samples", type=int, default=400, help="MH samples per run"
    )
    parser.add_argument(
        "--only",
        nargs="*",
        metavar="NAME",
        help="restrict to these Table-1 benchmark names",
    )
    args = parser.parse_args(argv)
    report = write_bench_json(
        args.output, n_samples=args.samples, only=args.only
    )
    for bench in report["benchmarks"]:
        inf = bench["inference"]
        print(
            f"{bench['name']:28s} ratio={bench['slice']['ratio']:.3f} "
            f"orig={inf['original']['samples_per_sec']:9.1f}/s "
            f"sliced={inf['sliced']['samples_per_sec']:9.1f}/s "
            f"speedup={inf['speedup']:.2f}x"
        )
    print(f"wrote {args.output} ({len(report['benchmarks'])} benchmarks)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
