"""Benchmark harness: engine runners, speedup measurement, reports."""

from .report import format_convergence_table, format_speedup_table, format_table
from .sweep import SweepPoint, format_sweep, sweep_speedup
from .runner import (
    EngineRun,
    RunStatus,
    SpeedupRow,
    measure_speedup,
    run_engine,
)

__all__ = [
    "format_convergence_table",
    "format_speedup_table",
    "format_table",
    "EngineRun",
    "RunStatus",
    "SpeedupRow",
    "measure_speedup",
    "run_engine",
    "SweepPoint",
    "format_sweep",
    "sweep_speedup",
]
