"""Benchmark harness: engine runners, speedup measurement, reports."""

from .bench_json import collect_bench_report, write_bench_json
from .report import format_convergence_table, format_speedup_table, format_table
from .sweep import SweepPoint, format_sweep, sweep_speedup
from .runner import (
    EngineRun,
    RunStatus,
    SpeedupRow,
    measure_speedup,
    run_engine,
)

__all__ = [
    "collect_bench_report",
    "write_bench_json",
    "format_convergence_table",
    "format_speedup_table",
    "format_table",
    "EngineRun",
    "RunStatus",
    "SpeedupRow",
    "measure_speedup",
    "run_engine",
    "SweepPoint",
    "format_sweep",
    "sweep_speedup",
]
