"""Benchmark harness: engine runners, speedup measurement, reports."""

from .bench_factored import collect_factored_report, write_factored_json
from .bench_json import collect_bench_report, write_bench_json
from .report import format_convergence_table, format_speedup_table, format_table
from .sweep import SweepPoint, format_sweep, sweep_speedup
from .runner import (
    EngineRun,
    RunStatus,
    SpeedupRow,
    measure_speedup,
    run_engine,
)

__all__ = [
    "collect_bench_report",
    "write_bench_json",
    "collect_factored_report",
    "write_factored_json",
    "format_convergence_table",
    "format_speedup_table",
    "format_table",
    "EngineRun",
    "RunStatus",
    "SpeedupRow",
    "measure_speedup",
    "run_engine",
    "SweepPoint",
    "format_sweep",
    "sweep_speedup",
]
