"""Factored vs monolithic inference benchmark (``BENCH_pr6.json``).

Two tables, one JSON document:

* **Table-1 models** — every registry benchmark at ``bench`` scale is
  sliced with the factorisation pass on, then compiled MH runs once
  monolithically on the sliced program and once shard-by-factor
  (:meth:`repro.runtime.parallel.ParallelRunner.run_factored`),
  recording wall-clock, samples/sec, and the factor count.  Most
  Table-1 programs are a single connected component after slicing, so
  these rows mostly document that factorisation costs nothing when it
  cannot split.
* **Synthetic K-component family** — ``k_components_model(k)`` for
  ``k`` in ``--k-values``, under *rejection* sampling, where
  factorisation provably wins: the monolithic run accepts with
  probability ``0.5**k`` while each factor accepts with probability
  ``0.5``, so factored throughput beats monolithic for every
  ``k >= 2`` (the document records the speedup so CI can assert it).

Both arms run on the same :class:`ParallelRunner` with the inline
backend so the comparison measures the factorisation itself, not
process fan-out.  Regenerate the repo-root snapshot with::

    PYTHONPATH=src python -m repro.harness.bench_factored -o BENCH_pr6.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Any, Dict, List, Optional

from ..core.ast import Program
from ..inference.base import Engine
from ..inference.mh import MetropolisHastings
from ..inference.rejection import RejectionSampler
from ..models.kcomponents import k_components_model
from ..models.registry import TABLE1
from ..runtime.parallel import ParallelRunner
from ..transforms.pipeline import sli

__all__ = [
    "factored_record",
    "kfamily_record",
    "collect_factored_report",
    "write_factored_json",
    "main",
]


def _throughput(run) -> Dict[str, float]:
    secs = max(run.elapsed_seconds, 1e-9)
    return {
        "samples": len(run.samples),
        "seconds": round(secs, 6),
        "samples_per_sec": round(len(run.samples) / secs, 2),
    }


def _compare(
    program: Program,
    make_engine,
    runner: ParallelRunner,
) -> Dict[str, Any]:
    """Monolithic vs factored throughput for one program under one
    engine family; the sliced program and factor set come from the same
    ``sli`` run so both arms condition identically."""
    result = sli(program, factorize=True)
    factors = result.factors
    assert factors is not None
    mono_engine: Engine = make_engine()
    t0 = time.perf_counter()
    mono = mono_engine.infer(result.sliced)
    mono.elapsed_seconds = time.perf_counter() - t0
    fact = runner.run_factored(make_engine(), factors)
    monolithic = _throughput(mono)
    factored = _throughput(fact)
    return {
        "n_factors": len(factors),
        "dropped": factors.dropped,
        "monolithic": monolithic,
        "factored": factored,
        "speedup": round(
            factored["samples_per_sec"]
            / max(monolithic["samples_per_sec"], 1e-9),
            3,
        ),
    }


def factored_record(
    spec: Any,
    runner: ParallelRunner,
    n_samples: int = 400,
    seed: int = 0,
) -> Dict[str, Any]:
    """One Table-1 benchmark: compiled MH, monolithic vs factored."""

    def make_engine() -> Engine:
        return MetropolisHastings(
            n_samples=n_samples, burn_in=100, seed=seed, compiled=True
        )

    record = _compare(spec.bench(), make_engine, runner)
    record["name"] = spec.name
    record["engine"] = "mh-compiled"
    return record


def kfamily_record(
    k: int,
    runner: ParallelRunner,
    n_samples: int = 200,
    seed: int = 0,
) -> Dict[str, Any]:
    """One synthetic K-component point: rejection sampling, monolithic
    vs factored.  Monolithic acceptance is ``0.5**k`` so its attempt
    budget scales with ``2**k``."""

    def make_engine() -> Engine:
        return RejectionSampler(
            n_samples=n_samples,
            seed=seed,
            max_attempts=max(200_000, n_samples * (2 ** (k + 4))),
        )

    record = _compare(k_components_model(k), make_engine, runner)
    record["k"] = k
    record["engine"] = "rejection"
    return record


def collect_factored_report(
    n_samples: int = 400,
    k_values: Optional[List[int]] = None,
    only: Optional[List[str]] = None,
) -> Dict[str, Any]:
    """The full ``BENCH_pr6.json`` document."""
    runner = ParallelRunner(n_workers=1, backend="inline")
    table1 = []
    for spec in TABLE1:
        if only and spec.name not in only:
            continue
        table1.append(factored_record(spec, runner, n_samples=n_samples))
    kfamily = [
        kfamily_record(k, runner, n_samples=max(50, n_samples // 2))
        for k in (k_values or [1, 2, 4, 8])
    ]
    return {
        "schema": "repro-bench/1",
        "pr": 6,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "n_samples": n_samples,
        "table1": table1,
        "k_family": kfamily,
    }


def write_factored_json(
    path: str = "BENCH_pr6.json",
    n_samples: int = 400,
    k_values: Optional[List[int]] = None,
    only: Optional[List[str]] = None,
) -> Dict[str, Any]:
    report = collect_factored_report(
        n_samples=n_samples, k_values=k_values, only=only
    )
    with open(path, "w") as f:
        json.dump(report, f, indent=2, sort_keys=False)
        f.write("\n")
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness.bench_factored",
        description="Write the factored-vs-monolithic benchmark snapshot.",
    )
    parser.add_argument("-o", "--output", default="BENCH_pr6.json")
    parser.add_argument(
        "--samples", type=int, default=400, help="samples per run"
    )
    parser.add_argument(
        "--k-values",
        type=int,
        nargs="*",
        metavar="K",
        help="synthetic family sizes (default: 1 2 4 8)",
    )
    parser.add_argument(
        "--only",
        nargs="*",
        metavar="NAME",
        help="restrict Table-1 rows to these benchmark names",
    )
    args = parser.parse_args(argv)
    report = write_factored_json(
        args.output,
        n_samples=args.samples,
        k_values=args.k_values,
        only=args.only,
    )
    for row in report["table1"]:
        print(
            f"{row['name']:28s} factors={row['n_factors']} "
            f"mono={row['monolithic']['samples_per_sec']:9.1f}/s "
            f"fact={row['factored']['samples_per_sec']:9.1f}/s "
            f"speedup={row['speedup']:.2f}x"
        )
    for row in report["k_family"]:
        print(
            f"k={row['k']:<26d} factors={row['n_factors']} "
            f"mono={row['monolithic']['samples_per_sec']:9.1f}/s "
            f"fact={row['factored']['samples_per_sec']:9.1f}/s "
            f"speedup={row['speedup']:.2f}x"
        )
    print(
        f"wrote {args.output} "
        f"({len(report['table1'])} benchmarks, "
        f"{len(report['k_family'])} k-family points)"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
