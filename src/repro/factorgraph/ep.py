"""Gaussian Expectation Propagation on factor graphs.

The factor vocabulary is the one Infer.NET compiles linear-Gaussian
models and TrueSkill to:

* :class:`PriorFactor`       — ``x ~ N(mu, var)``
* :class:`LinearFactor`      — ``y = c0 + sum(c_i * x_i) + N(0, var)``
* :class:`ObservedFactor`    — ``x = value`` (numeric point mass)
* :class:`GreaterThanFactor` — condition ``d > threshold`` by
  truncated-Gaussian moment matching.

The scheduler (:class:`EPGraph.run`) sweeps factors in insertion order
until the largest natural-parameter change drops below ``tol``.  On
tree-structured linear-Gaussian graphs this converges to the exact
posterior means; on loopy graphs it is the usual Gaussian EP/BP
approximation (means exact in the linear-Gaussian case whenever it
converges).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from .gaussian import Gaussian1D, v_exceeds, w_exceeds

__all__ = [
    "EPGraph",
    "GaussianVariable",
    "PriorFactor",
    "LinearFactor",
    "ObservedFactor",
    "GreaterThanFactor",
    "EPError",
]

_MIN_VAR = 1e-12


class EPError(RuntimeError):
    """EP failed (no proper belief, divergence)."""


class GaussianVariable:
    """A latent scalar with a Gaussian belief: the product of the
    messages from its neighbouring factors."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._messages: Dict[int, Gaussian1D] = {}

    def message_from(self, factor_id: int) -> Gaussian1D:
        return self._messages.get(factor_id, Gaussian1D.uniform())

    def set_message(self, factor_id: int, message: Gaussian1D) -> float:
        old = self.message_from(factor_id)
        self._messages[factor_id] = message
        return message.delta(old)

    def belief(self) -> Gaussian1D:
        out = Gaussian1D.uniform()
        for m in self._messages.values():
            out = out * m
        return out

    def cavity(self, factor_id: int) -> Gaussian1D:
        return self.belief() / self.message_from(factor_id)

    def __repr__(self) -> str:
        return f"GaussianVariable({self.name}, {self.belief()!r})"


class _Factor:
    def __init__(self, factor_id: int) -> None:
        self.factor_id = factor_id

    def update(self) -> float:
        """Send messages to all neighbours; return max parameter delta."""
        raise NotImplementedError


class PriorFactor(_Factor):
    """``x ~ N(mu, var)`` — a constant message."""

    def __init__(self, factor_id: int, x: GaussianVariable, mu: float, var: float):
        super().__init__(factor_id)
        self.x = x
        self.message = Gaussian1D.from_mean_var(mu, max(var, _MIN_VAR))

    def update(self) -> float:
        return self.x.set_message(self.factor_id, self.message)


class ObservedFactor(_Factor):
    """``x = value`` exactly (numeric point mass)."""

    def __init__(self, factor_id: int, x: GaussianVariable, value: float):
        super().__init__(factor_id)
        self.x = x
        self.message = Gaussian1D.point(value)

    def update(self) -> float:
        return self.x.set_message(self.factor_id, self.message)


class LinearFactor(_Factor):
    """``y = c0 + sum(c_i x_i) + N(0, noise_var)``.

    Message to ``y``: means and variances add.  Message to ``x_j``:
    solve for ``x_j`` and substitute the cavity moments of the others.
    Improper (non-positive-precision) cavities send a uniform message
    (the standard EP damping-by-skipping rule), so scheduling order
    cannot crash the sweep.
    """

    def __init__(
        self,
        factor_id: int,
        y: GaussianVariable,
        xs: Sequence[GaussianVariable],
        coeffs: Sequence[float],
        c0: float = 0.0,
        noise_var: float = 0.0,
    ) -> None:
        super().__init__(factor_id)
        if len(xs) != len(coeffs):
            raise ValueError("coefficient/variable arity mismatch")
        if any(c == 0.0 for c in coeffs):
            raise ValueError("zero coefficient in LinearFactor")
        self.y = y
        self.xs = list(xs)
        self.coeffs = list(coeffs)
        self.c0 = c0
        self.noise_var = noise_var

    def _moments(self, variable: GaussianVariable) -> Optional[Tuple[float, float]]:
        cavity = variable.cavity(self.factor_id)
        if not cavity.proper:
            return None
        return cavity.mean, cavity.variance

    def update(self) -> float:
        delta = 0.0
        # Message to y.
        moments = [self._moments(x) for x in self.xs]
        if all(m is not None for m in moments):
            mean = self.c0 + sum(
                c * m[0] for c, m in zip(self.coeffs, moments)  # type: ignore[index]
            )
            var = self.noise_var + sum(
                c * c * m[1] for c, m in zip(self.coeffs, moments)  # type: ignore[index]
            )
            msg = Gaussian1D.from_mean_var(mean, max(var, _MIN_VAR))
            delta = max(delta, self.y.set_message(self.factor_id, msg))
        # Messages to each x_j.
        y_moments = self._moments(self.y)
        for j, xj in enumerate(self.xs):
            if y_moments is None:
                continue
            rest_mean = self.c0
            rest_var = self.noise_var
            ok = True
            for i, (c, x) in enumerate(zip(self.coeffs, self.xs)):
                if i == j:
                    continue
                m = self._moments(x)
                if m is None:
                    ok = False
                    break
                rest_mean += c * m[0]
                rest_var += c * c * m[1]
            if not ok:
                continue
            cj = self.coeffs[j]
            mean = (y_moments[0] - rest_mean) / cj
            var = (y_moments[1] + rest_var) / (cj * cj)
            msg = Gaussian1D.from_mean_var(mean, max(var, _MIN_VAR))
            delta = max(delta, xj.set_message(self.factor_id, msg))
        return delta


class GreaterThanFactor(_Factor):
    """Condition ``d > threshold`` by truncated-Gaussian moment
    matching (the TrueSkill win factor)."""

    def __init__(
        self, factor_id: int, d: GaussianVariable, threshold: float = 0.0
    ) -> None:
        super().__init__(factor_id)
        self.d = d
        self.threshold = threshold

    def update(self) -> float:
        cavity = self.d.cavity(self.factor_id)
        if not cavity.proper:
            return 0.0
        mean, var = cavity.mean, cavity.variance
        sd = math.sqrt(var)
        t = (mean - self.threshold) / sd
        new_mean = mean + sd * v_exceeds(t)
        new_var = var * max(1.0 - w_exceeds(t), _MIN_VAR)
        new_belief = Gaussian1D.from_mean_var(new_mean, new_var)
        return self.d.set_message(self.factor_id, new_belief / cavity)


class EPGraph:
    """A factor graph with an EP sweep scheduler."""

    def __init__(self) -> None:
        self._variables: Dict[str, GaussianVariable] = {}
        self._factors: List[_Factor] = []

    # -- construction ----------------------------------------------------------

    def variable(self, name: str) -> GaussianVariable:
        if name not in self._variables:
            self._variables[name] = GaussianVariable(name)
        return self._variables[name]

    def _next_id(self) -> int:
        return len(self._factors)

    def add_prior(self, name: str, mu: float, var: float) -> None:
        self._factors.append(
            PriorFactor(self._next_id(), self.variable(name), mu, var)
        )

    def add_observed(self, name: str, value: float) -> None:
        self._factors.append(
            ObservedFactor(self._next_id(), self.variable(name), value)
        )

    def add_linear(
        self,
        y: str,
        terms: Sequence[Tuple[float, str]],
        c0: float = 0.0,
        noise_var: float = 0.0,
    ) -> None:
        xs = [self.variable(n) for _, n in terms]
        coeffs = [c for c, _ in terms]
        self._factors.append(
            LinearFactor(
                self._next_id(), self.variable(y), xs, coeffs, c0, noise_var
            )
        )

    def add_greater_than(self, d: str, threshold: float = 0.0) -> None:
        self._factors.append(
            GreaterThanFactor(self._next_id(), self.variable(d), threshold)
        )

    # -- inference ---------------------------------------------------------------

    @property
    def n_factors(self) -> int:
        return len(self._factors)

    @property
    def n_variables(self) -> int:
        return len(self._variables)

    def run(self, max_sweeps: int = 200, tol: float = 1e-8) -> int:
        """Sweep all factors until convergence; returns sweeps used."""
        for sweep in range(1, max_sweeps + 1):
            delta = 0.0
            for factor in self._factors:
                delta = max(delta, factor.update())
            if delta < tol:
                return sweep
        return max_sweeps

    def posterior(self, name: str) -> Tuple[float, float]:
        """Posterior (mean, variance) of a variable."""
        if name not in self._variables:
            raise EPError(f"unknown variable {name!r}")
        belief = self._variables[name].belief()
        if not belief.proper:
            raise EPError(f"variable {name!r} has an improper belief")
        return belief.mean, belief.variance
