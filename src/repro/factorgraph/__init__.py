"""Factor graphs and message passing: discrete belief propagation and
Gaussian expectation propagation — the "Infer.NET-like" engine."""

from .compile_gaussian import (
    CompiledGaussian,
    GaussianCompileError,
    compile_gaussian,
)
from .discrete_bp import BeliefPropagation, BPResult
from .engine import InferNetEngine
from .ep import (
    EPError,
    EPGraph,
    GaussianVariable,
    GreaterThanFactor,
    LinearFactor,
    ObservedFactor,
    PriorFactor,
)
from .gaussian import Gaussian1D, v_exceeds, w_exceeds

__all__ = [
    "CompiledGaussian",
    "GaussianCompileError",
    "compile_gaussian",
    "BeliefPropagation",
    "BPResult",
    "InferNetEngine",
    "EPError",
    "EPGraph",
    "GaussianVariable",
    "GreaterThanFactor",
    "LinearFactor",
    "ObservedFactor",
    "PriorFactor",
    "Gaussian1D",
    "v_exceeds",
    "w_exceeds",
]
