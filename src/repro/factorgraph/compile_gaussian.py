"""Compile straight-line Gaussian-linear PROB programs to EP factor
graphs — the continuous half of the "Infer.NET-like" engine.

Supported fragment (exactly what the paper's continuous benchmarks —
Bayesian linear regression, the HIV multilevel model, TrueSkill — need):

* ``x ~ Gaussian(mu_expr, var_expr)`` with ``mu_expr`` linear in
  program variables and ``var_expr`` constant;
* ``x ~ Gamma(a, b)`` when ``x`` is used only inside variance
  positions: the EP engine plugs in the Gamma's prior mean (a
  point-mass/variational approximation, documented in DESIGN.md §3 —
  regression-weight posterior *means* are unaffected);
* ``x = <linear expression>``;
* ``q = e1 <cmp> e2`` immediately consumed by ``observe(q)`` (or a
  direct ``observe(e1 <cmp> e2)``) — compiled to a difference variable
  plus a truncated-Gaussian factor (TrueSkill's win factor);
* ``observe(Gaussian(mu_expr, var_expr), value)`` with constant value —
  an observed noisy measurement.

Anything else raises :class:`GaussianCompileError`; the engine then
reports the program unsupported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..core.ast import (
    Assign,
    Binary,
    Block,
    Const,
    Decl,
    DistCall,
    Expr,
    Factor,
    If,
    Observe,
    ObserveSample,
    Program,
    Sample,
    Skip,
    Stmt,
    Unary,
    Var,
    While,
)
from ..dists import make_distribution
from .ep import EPGraph

__all__ = ["GaussianCompileError", "CompiledGaussian", "compile_gaussian"]

#: Linear form: constant + {variable: coefficient}.
Linear = Tuple[float, Dict[str, float]]


class GaussianCompileError(ValueError):
    """The program is outside the Gaussian-linear fragment."""


@dataclass
class CompiledGaussian:
    """The EP graph plus the linear form of the return expression."""

    graph: EPGraph
    ret_linear: Linear

    def posterior_moments(self) -> Tuple[float, float]:
        """Posterior (mean, variance) of the return expression, treating
        variable beliefs as independent (exact for a single variable)."""
        c0, coeffs = self.ret_linear
        mean = c0
        var = 0.0
        for name, c in coeffs.items():
            m, v = self.graph.posterior(name)
            mean += c * m
            var += c * c * v
        return mean, var


class _Compiler:
    def __init__(self) -> None:
        self.graph = EPGraph()
        #: Gamma-sampled variables, replaced by their prior mean.
        self.gamma_means: Dict[str, float] = {}
        #: Plain constants assigned in the program.
        self.consts: Dict[str, float] = {}
        #: Pending comparison assignments awaiting an observe.
        self.comparisons: Dict[str, Tuple[str, Linear]] = {}
        #: Variables materialized in the EP graph.
        self.latent: set = set()
        self._aux = 0

    # -- linear algebra over expressions ---------------------------------------

    def linearize(self, expr: Expr) -> Linear:
        if isinstance(expr, Const):
            if isinstance(expr.value, bool):
                raise GaussianCompileError(f"boolean constant {expr} in linear context")
            return float(expr.value), {}
        if isinstance(expr, Var):
            name = expr.name
            if name in self.consts:
                return self.consts[name], {}
            if name in self.gamma_means:
                return self.gamma_means[name], {}
            if name in self.latent:
                return 0.0, {name: 1.0}
            raise GaussianCompileError(f"variable {name!r} used before definition")
        if isinstance(expr, Unary):
            if expr.op != "-":
                raise GaussianCompileError(f"non-linear operator {expr.op!r}")
            c0, coeffs = self.linearize(expr.operand)
            return -c0, {k: -v for k, v in coeffs.items()}
        if isinstance(expr, Binary):
            if expr.op == "+":
                return _add(self.linearize(expr.left), self.linearize(expr.right))
            if expr.op == "-":
                left = self.linearize(expr.left)
                rc0, rcoeffs = self.linearize(expr.right)
                return _add(left, (-rc0, {k: -v for k, v in rcoeffs.items()}))
            if expr.op == "*":
                left = self.linearize(expr.left)
                right = self.linearize(expr.right)
                if not left[1]:
                    return _scale(right, left[0])
                if not right[1]:
                    return _scale(left, right[0])
                raise GaussianCompileError(f"non-linear product {expr}")
            if expr.op == "/":
                left = self.linearize(expr.left)
                right = self.linearize(expr.right)
                if right[1] or right[0] == 0.0:
                    raise GaussianCompileError(f"non-constant divisor in {expr}")
                return _scale(left, 1.0 / right[0])
            raise GaussianCompileError(f"operator {expr.op!r} is not linear")
        raise GaussianCompileError(f"unsupported expression {expr!r}")

    def constant(self, expr: Expr, what: str) -> float:
        c0, coeffs = self.linearize(expr)
        if coeffs:
            raise GaussianCompileError(f"{what} must be constant, got {expr}")
        return c0

    # -- statements -------------------------------------------------------------

    def visit(self, stmt: Stmt) -> None:
        if isinstance(stmt, (Skip, Decl)):
            return
        if isinstance(stmt, (If, While)):
            raise GaussianCompileError(
                "control flow is outside the Gaussian-linear fragment"
            )
        if isinstance(stmt, Factor):
            raise GaussianCompileError("factor statements are not supported")
        if isinstance(stmt, Block):
            for s in stmt.stmts:
                self.visit(s)
            return
        if isinstance(stmt, Sample):
            self._visit_sample(stmt)
            return
        if isinstance(stmt, Assign):
            self._visit_assign(stmt)
            return
        if isinstance(stmt, Observe):
            self._visit_observe(stmt.cond)
            return
        if isinstance(stmt, ObserveSample):
            self._visit_observe_sample(stmt)
            return
        raise TypeError(f"not a statement: {stmt!r}")

    def _visit_sample(self, stmt: Sample) -> None:
        dist = stmt.dist
        if dist.name == "Gaussian":
            if len(dist.args) != 2:
                raise GaussianCompileError(f"bad Gaussian arity in {stmt}")
            mu = self.linearize(dist.args[0])
            var = self.constant(dist.args[1], "Gaussian variance")
            self.latent.add(stmt.name)
            if not mu[1]:
                self.graph.add_prior(stmt.name, mu[0], var)
            else:
                self.graph.add_linear(
                    stmt.name,
                    [(c, n) for n, c in mu[1].items()],
                    c0=mu[0],
                    noise_var=var,
                )
            return
        if dist.name == "Gamma":
            args = tuple(
                self.constant(a, "Gamma parameter") for a in dist.args
            )
            self.gamma_means[stmt.name] = make_distribution("Gamma", args).mean()
            return
        raise GaussianCompileError(
            f"distribution {dist.name} is outside the Gaussian-linear fragment"
        )

    def _visit_assign(self, stmt: Assign) -> None:
        expr = stmt.expr
        if isinstance(expr, Binary) and expr.op in ("<", "<=", ">", ">=", "==", "!="):
            diff = _sub(self.linearize(expr.left), self.linearize(expr.right))
            self.comparisons[stmt.name] = (expr.op, diff)
            return
        linear = self.linearize(expr)
        if not linear[1]:
            self.consts[stmt.name] = linear[0]
            return
        if len(linear[1]) == 1 and linear[0] == 0.0:
            (name, coeff), = linear[1].items()
            if coeff == 1.0:
                # A pure alias: reuse the existing EP variable.
                self.latent.add(stmt.name)
                self.graph.add_linear(stmt.name, [(1.0, name)])
                return
        self.latent.add(stmt.name)
        self.graph.add_linear(
            stmt.name, [(c, n) for n, c in linear[1].items()], c0=linear[0]
        )

    def _fresh(self, base: str) -> str:
        self._aux += 1
        return f"${base}{self._aux}"

    def _observe_comparison(self, op: str, diff: Linear) -> None:
        c0, coeffs = diff
        if not coeffs:
            raise GaussianCompileError("comparison of two constants in observe")
        d = self._fresh("d")
        self.latent.add(d)
        self.graph.add_linear(d, [(c, n) for n, c in coeffs.items()], c0=c0)
        if op in (">", ">="):
            self.graph.add_greater_than(d, 0.0)
        elif op in ("<", "<="):
            # d < 0  ==  -d > 0; flip by observing the negated combo.
            neg = self._fresh("d")
            self.latent.add(neg)
            self.graph.add_linear(neg, [(-1.0, d)])
            self.graph.add_greater_than(neg, 0.0)
        elif op == "==":
            self.graph.add_observed(d, 0.0)
        else:
            raise GaussianCompileError("observe(!=) has no density interpretation")

    def _visit_observe(self, cond: Expr) -> None:
        if isinstance(cond, Var):
            if cond.name not in self.comparisons:
                raise GaussianCompileError(
                    f"observed variable {cond.name!r} is not a comparison"
                )
            op, diff = self.comparisons[cond.name]
            self._observe_comparison(op, diff)
            return
        if isinstance(cond, Binary) and cond.op in ("<", "<=", ">", ">=", "=="):
            diff = _sub(self.linearize(cond.left), self.linearize(cond.right))
            self._observe_comparison(cond.op, diff)
            return
        raise GaussianCompileError(f"unsupported observe condition {cond}")

    def _visit_observe_sample(self, stmt: ObserveSample) -> None:
        dist = stmt.dist
        if dist.name != "Gaussian":
            raise GaussianCompileError(
                f"soft observation of {dist.name} is not Gaussian-linear"
            )
        mu = self.linearize(dist.args[0])
        var = self.constant(dist.args[1], "Gaussian variance")
        value = self.constant(stmt.value, "observed value")
        if not mu[1]:
            # Observing a constant-mean Gaussian constrains nothing.
            return
        y = self._fresh("y")
        self.latent.add(y)
        self.graph.add_linear(
            y, [(c, n) for n, c in mu[1].items()], c0=mu[0], noise_var=var
        )
        self.graph.add_observed(y, value)


def _add(a: Linear, b: Linear) -> Linear:
    coeffs = dict(a[1])
    for k, v in b[1].items():
        coeffs[k] = coeffs.get(k, 0.0) + v
    return a[0] + b[0], {k: v for k, v in coeffs.items() if v != 0.0}


def _sub(a: Linear, b: Linear) -> Linear:
    return _add(a, (-b[0], {k: -v for k, v in b[1].items()}))


def _scale(a: Linear, s: float) -> Linear:
    return a[0] * s, {k: v * s for k, v in a[1].items() if v * s != 0.0}


def compile_gaussian(program: Program) -> CompiledGaussian:
    """Compile ``program`` to an EP graph; raises
    :class:`GaussianCompileError` outside the fragment."""
    compiler = _Compiler()
    compiler.visit(program.body)
    ret = compiler.linearize(program.ret)
    return CompiledGaussian(compiler.graph, ret)
