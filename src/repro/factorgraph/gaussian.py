"""One-dimensional Gaussians in natural parameters, plus truncated
Gaussian moments — the numeric core of the EP engine (and of TrueSkill
in particular)."""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["Gaussian1D", "v_exceeds", "w_exceeds", "POINT_PRECISION"]

#: Precision used to represent (numerically) observed point masses.
POINT_PRECISION = 1e12

_SQRT_2PI = math.sqrt(2.0 * math.pi)
_SQRT_2 = math.sqrt(2.0)


@dataclass(frozen=True)
class Gaussian1D:
    """``N(mean, var)`` stored as precision ``pi = 1/var`` and
    precision-adjusted mean ``tau = mean/var``.

    ``pi == 0`` is the improper uniform message (the multiplicative
    identity); division of messages may produce negative precision
    intermediates, which EP tolerates transiently.
    """

    pi: float = 0.0
    tau: float = 0.0

    @classmethod
    def from_mean_var(cls, mean: float, var: float) -> "Gaussian1D":
        if var <= 0.0:
            raise ValueError(f"variance must be positive, got {var}")
        pi = 1.0 / var
        return cls(pi, pi * mean)

    @classmethod
    def point(cls, value: float) -> "Gaussian1D":
        """A numeric point mass at ``value``."""
        return cls(POINT_PRECISION, POINT_PRECISION * value)

    @classmethod
    def uniform(cls) -> "Gaussian1D":
        return cls(0.0, 0.0)

    @property
    def mean(self) -> float:
        if self.pi == 0.0:
            return 0.0
        return self.tau / self.pi

    @property
    def variance(self) -> float:
        if self.pi == 0.0:
            return math.inf
        return 1.0 / self.pi

    @property
    def proper(self) -> bool:
        return self.pi > 0.0

    def __mul__(self, other: "Gaussian1D") -> "Gaussian1D":
        return Gaussian1D(self.pi + other.pi, self.tau + other.tau)

    def __truediv__(self, other: "Gaussian1D") -> "Gaussian1D":
        return Gaussian1D(self.pi - other.pi, self.tau - other.tau)

    def delta(self, other: "Gaussian1D") -> float:
        """Convergence metric: max change in natural parameters."""
        return max(abs(self.pi - other.pi), abs(self.tau - other.tau))

    def __repr__(self) -> str:
        if self.pi == 0.0:
            return "Gaussian1D(uniform)"
        return f"Gaussian1D(mean={self.mean:.6g}, var={self.variance:.6g})"


def _norm_pdf(t: float) -> float:
    return math.exp(-0.5 * t * t) / _SQRT_2PI


def _norm_cdf(t: float) -> float:
    return 0.5 * math.erfc(-t / _SQRT_2)


def v_exceeds(t: float) -> float:
    """``v(t) = pdf(t) / cdf(t)``: additive correction to the mean of a
    Gaussian truncated to ``> -t`` (Herbrich et al., TrueSkill).

    Numerically stable for very negative ``t`` via the Mills-ratio
    asymptotic ``v(t) ~ -t``.
    """
    cdf = _norm_cdf(t)
    if cdf < 1e-300:
        return -t
    return _norm_pdf(t) / cdf


def w_exceeds(t: float) -> float:
    """``w(t) = v(t) * (v(t) + t)``: multiplicative shrink of the
    variance of the truncated Gaussian; always in ``(0, 1)``."""
    v = v_exceeds(t)
    w = v * (v + t)
    return min(max(w, 0.0), 1.0)
