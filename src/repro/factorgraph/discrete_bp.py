"""Loopy belief propagation (sum-product) for discrete factor graphs
built from compiled Bayesian networks.

This is the algorithm Infer.NET runs on discrete graphical models; on
tree-structured networks it is exact, on loopy ones it is the usual
approximation.  The benchmark harness runs it on the original and the
sliced program's networks — fewer nodes means fewer and smaller
messages per sweep.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Mapping, Optional, Tuple, Union

from ..bayesnet.network import BayesNet
from ..bayesnet.varelim import Factor
from ..semantics.distribution import FiniteDist

__all__ = ["BeliefPropagation", "BPResult"]

Value = Union[bool, int, float]
Message = Dict[Value, float]


class BPResult:
    """Beliefs for every variable plus convergence metadata."""

    def __init__(
        self, beliefs: Dict[str, FiniteDist], sweeps: int, converged: bool
    ) -> None:
        self.beliefs = beliefs
        self.sweeps = sweeps
        self.converged = converged

    def marginal(self, name: str) -> FiniteDist:
        return self.beliefs[name]


class BeliefPropagation:
    """Sum-product BP over the factorization of a Bayesian network."""

    def __init__(self, max_sweeps: int = 100, tol: float = 1e-9) -> None:
        self.max_sweeps = max_sweeps
        self.tol = tol

    def run(
        self,
        net: BayesNet,
        evidence: Optional[Mapping[str, Value]] = None,
    ) -> BPResult:
        evidence = dict(evidence or {})
        factors: List[Factor] = []
        for name in net.order:
            f = Factor.from_node(net, name).restrict(evidence)
            if f.variables:
                factors.append(f)
        supports = {
            name: net.nodes[name].support
            for name in net.order
            if name not in evidence
        }
        # Message stores: (factor_idx, var) in both directions.
        var_to_factor: Dict[Tuple[int, str], Message] = {}
        factor_to_var: Dict[Tuple[int, str], Message] = {}
        neighbors: Dict[str, List[int]] = {}
        for i, f in enumerate(factors):
            for v in f.variables:
                neighbors.setdefault(v, []).append(i)
                var_to_factor[(i, v)] = self._uniform(supports[v])
                factor_to_var[(i, v)] = self._uniform(supports[v])

        sweeps = 0
        converged = False
        for sweeps in range(1, self.max_sweeps + 1):
            delta = 0.0
            # Factor -> variable.
            for i, f in enumerate(factors):
                for v in f.variables:
                    msg = self._factor_message(
                        f, v, supports, i, var_to_factor
                    )
                    delta = max(delta, self._delta(factor_to_var[(i, v)], msg))
                    factor_to_var[(i, v)] = msg
            # Variable -> factor.
            for v, facs in neighbors.items():
                for i in facs:
                    msg = {val: 1.0 for val in supports[v]}
                    for j in facs:
                        if j == i:
                            continue
                        incoming = factor_to_var[(j, v)]
                        for val in msg:
                            msg[val] *= incoming[val]
                    msg = self._normalize(msg, supports[v])
                    delta = max(delta, self._delta(var_to_factor[(i, v)], msg))
                    var_to_factor[(i, v)] = msg
            if delta < self.tol:
                converged = True
                break

        beliefs: Dict[str, FiniteDist] = {}
        for v, facs in neighbors.items():
            weights = {val: 1.0 for val in supports[v]}
            for i in facs:
                incoming = factor_to_var[(i, v)]
                for val in weights:
                    weights[val] *= incoming[val]
            beliefs[v] = FiniteDist(weights)
        for name, value in evidence.items():
            beliefs[name] = FiniteDist.point(value)
        # Variables with no factors (isolated after evidence) keep a
        # uniform belief.
        for name, support in supports.items():
            if name not in beliefs:
                beliefs[name] = FiniteDist({val: 1.0 for val in support})
        return BPResult(beliefs, sweeps, converged)

    # -- message math -----------------------------------------------------------

    @staticmethod
    def _uniform(support: Tuple[Value, ...]) -> Message:
        p = 1.0 / len(support)
        return {val: p for val in support}

    @staticmethod
    def _normalize(msg: Message, support: Tuple[Value, ...]) -> Message:
        total = sum(msg.values())
        if total <= 0.0:
            # Contradictory messages: fall back to uniform rather than
            # dividing by zero (inconsistent evidence surfaces in the
            # final belief instead).
            return BeliefPropagation._uniform(support)
        return {val: p / total for val, p in msg.items()}

    @staticmethod
    def _delta(a: Message, b: Message) -> float:
        return max(abs(a[val] - b[val]) for val in a)

    @staticmethod
    def _factor_message(
        factor: Factor,
        target: str,
        supports: Mapping[str, Tuple[Value, ...]],
        factor_idx: int,
        var_to_factor: Mapping[Tuple[int, str], Message],
    ) -> Message:
        t_idx = factor.variables.index(target)
        out = {val: 0.0 for val in supports[target]}
        for key, p in factor.table.items():
            weight = p
            for pos, var in enumerate(factor.variables):
                if pos == t_idx:
                    continue
                weight *= var_to_factor[(factor_idx, var)][key[pos]]
            out[key[t_idx]] = out.get(key[t_idx], 0.0) + weight
        return BeliefPropagation._normalize(out, supports[target])
