"""The "Infer.NET-like" inference engine.

Infer.NET compiles a model to a factor graph and runs message passing:
belief propagation on discrete models, expectation propagation on
Gaussian/TrueSkill models.  This engine does the same for PROB
programs:

1. try the discrete path — preprocess, compile to a Bayesian network,
   run loopy sum-product BP;
2. otherwise try the Gaussian-linear path — compile to an EP graph and
   sweep to convergence;
3. otherwise raise :class:`UnsupportedProgramError`.

Inference cost is dominated by (factors x sweeps); slicing shrinks the
graph, which is exactly the Figure-18 effect for the Infer.NET column.
"""

from __future__ import annotations

import time

from ..bayesnet.compile import CompileError, compile_program
from ..core.ast import Program
from ..core.validate import is_svf
from ..inference.base import Engine, InferenceResult, UnsupportedProgramError
from ..transforms.pipeline import preprocess
from .compile_gaussian import GaussianCompileError, compile_gaussian
from .discrete_bp import BeliefPropagation

__all__ = ["InferNetEngine"]


class InferNetEngine(Engine):
    """Message-passing inference: discrete BP or Gaussian EP."""

    name = "infernet"

    def __init__(
        self,
        max_sweeps: int = 100,
        tol: float = 1e-9,
        exact_discrete: bool = True,
    ) -> None:
        self.max_sweeps = max_sweeps
        self.tol = tol
        #: Use variable elimination on the discrete path (exact, the
        #: default — loopy BP mishandles the deterministic gate nodes
        #: the SSA pre-pass introduces); set ``False`` for loopy BP.
        self.exact_discrete = exact_discrete

    def infer(self, program: Program) -> InferenceResult:
        start = time.perf_counter()
        discrete_error: str
        try:
            result = self._discrete(program)
            result.elapsed_seconds = time.perf_counter() - start
            return result
        except CompileError as exc:
            discrete_error = str(exc)
        try:
            result = self._gaussian(program)
            result.elapsed_seconds = time.perf_counter() - start
            return result
        except GaussianCompileError as exc:
            raise UnsupportedProgramError(
                f"neither discrete ({discrete_error}) nor Gaussian-linear "
                f"({exc}) compilation applies"
            ) from exc

    def _discrete(self, program: Program) -> InferenceResult:
        # Prefer compiling the source program directly (smaller, rounder
        # network); fall back to the preprocessed form when the source
        # is outside the compilable fragment.
        try:
            compiled = compile_program(program)
        except CompileError:
            if is_svf(program):
                raise
            compiled = compile_program(preprocess(program))
        if self.exact_discrete:
            from ..bayesnet.varelim import variable_elimination

            dist = variable_elimination(
                compiled.net, compiled.query, compiled.evidence
            )
            result = InferenceResult(exact=dist)
            result.statements_executed = len(compiled.net)
            return result
        bp = BeliefPropagation(max_sweeps=self.max_sweeps, tol=self.tol)
        run = bp.run(compiled.net, compiled.evidence)
        result = InferenceResult(exact=run.marginal(compiled.query))
        # Work measure: one "statement" per (factor, sweep).
        result.statements_executed = len(compiled.net) * run.sweeps
        return result

    def _gaussian(self, program: Program) -> InferenceResult:
        compiled = compile_gaussian(program)
        sweeps = compiled.graph.run(max_sweeps=self.max_sweeps, tol=self.tol)
        mean, var = compiled.posterior_moments()
        result = InferenceResult(moments=(mean, var))
        result.statements_executed = compiled.graph.n_factors * sweeps
        return result
