"""Random PROB program generation — the one generator behind both the
hypothesis property tests and the differential fuzzer.

The AST-building logic lives in :func:`build_program`, written against
the tiny :class:`Chooser` interface (three primitive decisions:
``integer``, ``choice``, ``boolean``).  Two front ends drive it:

* :func:`generate_program` — a plain seeded :class:`random.Random`
  chooser, used by ``python -m repro.qa fuzz`` for high-throughput
  campaigns (no hypothesis machinery in the loop);
* :func:`programs` — a hypothesis ``@composite`` strategy whose every
  decision routes through ``draw``, so hypothesis's shrinker still
  works.  ``tests/strategies.py`` re-exports it; the property suite
  and the fuzzer therefore exercise the *same* program family and can
  never drift apart.

Design constraints baked into the generator (unchanged from the
historical ``tests/strategies.py``):

* **def-before-use** — statements only read already-defined variables,
  so the paper-faithful SSA renaming is sound;
* **almost-sure termination** — loop conditions are re-sampled from a
  bounded-probability Bernoulli on every iteration, so the exact
  engine's unrolling converges;
* **non-degenerate conditioning** — observes are disjunction-weakened
  with a fresh coin so that programs rarely block every run (consumers
  still skip programs whose normalizer is zero).

Every knob sits on :class:`GenConfig`; the defaults reproduce the
historical generator's shape.

The module also holds the seed-corpus reader/writer: programs are
stored as ``.prob`` files in canonical concrete syntax
(:func:`repro.core.printer.pretty`), so the corpus is human-readable,
diffable, and round-trips through the parser.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from ..core.ast import (
    Assign,
    Binary,
    Const,
    DistCall,
    Expr,
    If,
    Observe,
    Program,
    Sample,
    Stmt,
    Unary,
    Var,
    While,
    seq,
)
from ..core.parser import parse
from ..core.printer import pretty

__all__ = [
    "GenConfig",
    "Chooser",
    "RandomChooser",
    "build_program",
    "build_bool_expr",
    "build_int_expr",
    "generate_program",
    "program_stream",
    "programs",
    "bool_exprs",
    "int_exprs",
    "save_program",
    "load_program",
    "iter_corpus",
]


@dataclass(frozen=True)
class GenConfig:
    """Tuning knobs for the program generator.

    The defaults reproduce the historical ``tests/strategies.py``
    family; the fuzzer CLI exposes the size/feature knobs directly.
    """

    #: Statement count bounds: top-level blocks draw up to
    #: ``max_top_stmts``, nested blocks up to ``max_nested_stmts``.
    max_top_stmts: int = 6
    max_nested_stmts: int = 4
    #: Nesting depth cap for if/while bodies.
    max_depth: int = 3
    #: Expression recursion depth.
    max_expr_depth: int = 2
    #: Feature toggles.
    allow_loops: bool = True
    allow_observes: bool = True
    #: Variable pools (bool variables are ``b0..``, ints ``n0..``).
    n_bool_vars: int = 4
    n_int_vars: int = 3
    #: Integer constants are drawn from ``[0, max_int_const]``.
    max_int_const: int = 3
    #: Bernoulli parameters — away from 0/1 so observes rarely become
    #: impossible.
    prob_palette: Tuple[float, ...] = (0.2, 0.3, 0.5, 0.7, 0.8)
    #: Loop-continue probabilities — bounded away from 1 so loops
    #: terminate almost surely and the exact engine's peeling
    #: converges quickly.
    loop_continue_probs: Tuple[float, ...] = (0.2, 0.3, 0.5)
    #: Disjunction-weaken observes with a fresh ``Bernoulli(0.7)``
    #: coin so full blocking is rare.
    weaken_observes: bool = True
    #: Emit this many statically independent components: each gets its
    #: own variable pool (``var_prefix`` distinguishes them), top-level
    #: statements are round-robin interleaved, and the return value
    #: folds one boolean per component.  ``1`` is the historical
    #: single-component family.
    n_components: int = 1
    #: Inserted *after* the type letter (``b``/``n``), so per-component
    #: pools like ``bc0_0`` still satisfy the ``startswith`` checks the
    #: expression builders use to tell bools from ints.
    var_prefix: str = ""

    @property
    def bool_vars(self) -> List[str]:
        return [f"b{self.var_prefix}{i}" for i in range(self.n_bool_vars)]

    @property
    def int_vars(self) -> List[str]:
        return [f"n{self.var_prefix}{i}" for i in range(self.n_int_vars)]


DEFAULT_CONFIG = GenConfig()


# ---------------------------------------------------------------------------
# Choosers: the three primitive decisions the builder makes
# ---------------------------------------------------------------------------


class Chooser:
    """Source of generator decisions.

    Implementations: :class:`RandomChooser` (seeded PRNG, fuzzing) and
    the hypothesis-backed chooser inside :func:`programs` (property
    tests, shrinkable).
    """

    def integer(self, lo: int, hi: int) -> int:
        """Uniform integer in ``[lo, hi]`` inclusive."""
        raise NotImplementedError

    def choice(self, options: Sequence):
        """One element of ``options``."""
        raise NotImplementedError

    def boolean(self) -> bool:
        """A fair coin."""
        raise NotImplementedError


class RandomChooser(Chooser):
    """Chooser backed by a (seeded) :class:`random.Random`."""

    def __init__(self, rng: Union[random.Random, int]) -> None:
        self._rng = rng if isinstance(rng, random.Random) else random.Random(rng)

    def integer(self, lo: int, hi: int) -> int:
        return self._rng.randint(lo, hi)

    def choice(self, options: Sequence):
        return options[self._rng.randrange(len(options))]

    def boolean(self) -> bool:
        return self._rng.random() < 0.5


# ---------------------------------------------------------------------------
# The shared AST builder
# ---------------------------------------------------------------------------


def build_bool_expr(
    ch: Chooser,
    defined: Sequence[str],
    config: GenConfig = DEFAULT_CONFIG,
    depth: Optional[int] = None,
) -> Expr:
    """A boolean expression over the defined boolean variables."""
    if depth is None:
        depth = config.max_expr_depth
    available = [v for v in defined if v.startswith("b")]
    if depth <= 0 or ch.integer(0, 2) == 0:
        # Leaf: a variable when one exists (2/3 of the time), else a
        # constant.
        if available and ch.integer(0, 2) != 0:
            return Var(ch.choice(available))
        return Const(ch.boolean())
    op = ch.choice(["!", "&&", "||"])
    if op == "!":
        return Unary("!", build_bool_expr(ch, defined, config, depth - 1))
    return Binary(
        op,
        build_bool_expr(ch, defined, config, depth - 1),
        build_bool_expr(ch, defined, config, depth - 1),
    )


def build_int_expr(
    ch: Chooser,
    defined: Sequence[str],
    config: GenConfig = DEFAULT_CONFIG,
    depth: Optional[int] = None,
) -> Expr:
    """A small integer expression over the defined integer variables.

    Multiplication only by a small constant: ``n = n * n`` inside a
    loop doubles the bit length every iteration, and the exact
    engine's loop peeling then builds gigabyte-sized bignums before
    the tail mass underflows.  Constant factors keep growth linear.
    """
    if depth is None:
        depth = config.max_expr_depth
    available = [v for v in defined if v.startswith("n")]
    if depth <= 0 or ch.integer(0, 2) == 0:
        if available and ch.integer(0, 2) != 0:
            return Var(ch.choice(available))
        return Const(ch.integer(0, config.max_int_const))
    op = ch.choice(["+", "-", "*"])
    if op == "*":
        return Binary(
            "*",
            Const(ch.integer(0, config.max_int_const)),
            build_int_expr(ch, defined, config, depth - 1),
        )
    return Binary(
        op,
        build_int_expr(ch, defined, config, depth - 1),
        build_int_expr(ch, defined, config, depth - 1),
    )


def _build_statements(
    ch: Chooser,
    defined: List[str],
    config: GenConfig,
    depth: int,
    allow_loops: bool,
) -> List[Stmt]:
    hi = config.max_nested_stmts if depth else config.max_top_stmts
    n = ch.integer(1, max(1, hi))
    kinds = ["sample_b", "sample_n", "assign_b", "assign_n"]
    if depth < config.max_depth:
        kinds.append("if")
    if config.allow_observes:
        kinds.append("observe")
    if allow_loops and config.allow_loops and depth == 0:
        kinds.append("while")
    out: List[Stmt] = []
    for _ in range(n):
        kind = ch.choice(kinds)
        if kind == "sample_b":
            name = ch.choice(config.bool_vars)
            p = ch.choice(config.prob_palette)
            out.append(Sample(name, DistCall("Bernoulli", (Const(p),))))
            if name not in defined:
                defined.append(name)
        elif kind == "sample_n":
            name = ch.choice(config.int_vars)
            lo = ch.integer(0, 1)
            hi_ = lo + ch.integer(0, 2)
            out.append(
                Sample(name, DistCall("DiscreteUniform", (Const(lo), Const(hi_))))
            )
            if name not in defined:
                defined.append(name)
        elif kind == "assign_b":
            name = ch.choice(config.bool_vars)
            out.append(Assign(name, build_bool_expr(ch, defined, config)))
            if name not in defined:
                defined.append(name)
        elif kind == "assign_n":
            name = ch.choice(config.int_vars)
            out.append(Assign(name, build_int_expr(ch, defined, config)))
            if name not in defined:
                defined.append(name)
        elif kind == "observe":
            cond = build_bool_expr(ch, defined, config)
            if config.weaken_observes:
                # Weaken with a fresh coin so full blocking is rare.
                helper = ch.choice(config.bool_vars)
                out.append(Sample(helper, DistCall("Bernoulli", (Const(0.7),))))
                if helper not in defined:
                    defined.append(helper)
                out.append(Observe(Binary("||", cond, Var(helper))))
            else:
                out.append(Observe(cond))
        elif kind == "if":
            cond = build_bool_expr(ch, defined, config)
            then_defined = list(defined)
            then_branch = seq(
                *_build_statements(ch, then_defined, config, depth + 1, allow_loops)
            )
            else_defined = list(defined)
            else_branch = seq(
                *_build_statements(ch, else_defined, config, depth + 1, allow_loops)
            )
            out.append(If(cond, then_branch, else_branch))
            # Only variables defined on *both* branches (or before) are
            # definitely defined afterwards.
            defined[:] = [
                v
                for v in set(then_defined) | set(else_defined)
                if v in then_defined and v in else_defined
            ]
        else:  # while
            loop_var = ch.choice(config.bool_vars)
            p = ch.choice(config.loop_continue_probs)
            body_defined = list(defined) + [loop_var]
            body = _build_statements(ch, body_defined, config, depth + 1, False)
            body.append(Sample(loop_var, DistCall("Bernoulli", (Const(p),))))
            out.append(Sample(loop_var, DistCall("Bernoulli", (Const(p),))))
            out.append(While(Var(loop_var), seq(*body)))
            if loop_var not in defined:
                defined.append(loop_var)
    return out


def build_program(ch: Chooser, config: GenConfig = DEFAULT_CONFIG) -> Program:
    """A random well-formed finite discrete PROB program.

    With ``config.n_components > 1`` the program is a round-robin
    interleaving of that many statically independent components (no
    statement of one mentions a variable of another; per-component
    statement order is preserved, so def-before-use still holds), and
    the return expression is an ``&&``/``||`` fold of one boolean per
    component — the factorisation pass must split such programs along
    exactly those component seams.
    """
    if config.n_components <= 1:
        defined: List[str] = []
        stmts = _build_statements(ch, defined, config, 0, config.allow_loops)
        body = seq(*stmts)
        if ch.boolean():
            ret = build_bool_expr(ch, defined, config)
        else:
            ret = build_int_expr(ch, defined, config)
        return Program(body, ret)
    parts: List[Tuple[List[Stmt], Expr]] = []
    for i in range(config.n_components):
        sub = replace(
            config,
            n_components=1,
            var_prefix=f"{config.var_prefix}c{i}_",
        )
        defined = []
        stmts = _build_statements(ch, defined, sub, 0, sub.allow_loops)
        parts.append((stmts, build_bool_expr(ch, defined, sub)))
    interleaved: List[Stmt] = []
    cursor = 0
    while any(stmts for stmts, _ in parts):
        stmts, _ = parts[cursor % len(parts)]
        if stmts:
            interleaved.append(stmts.pop(0))
        cursor += 1
    ret = parts[0][1]
    for _, part_ret in parts[1:]:
        ret = Binary(ch.choice(["&&", "||"]), ret, part_ret)
    return Program(seq(*interleaved), ret)


# ---------------------------------------------------------------------------
# Fuzzer front end
# ---------------------------------------------------------------------------


def generate_program(
    seed: Union[int, random.Random],
    config: GenConfig = DEFAULT_CONFIG,
) -> Program:
    """One random program from a seed (or a live RNG)."""
    return build_program(RandomChooser(seed), config)


def program_stream(
    seed: int, config: GenConfig = DEFAULT_CONFIG
) -> Iterator[Tuple[int, Program]]:
    """An infinite deterministic stream ``(index, program)``.

    Program ``i`` is generated from its own derived seed, so any
    single program from a campaign can be regenerated without
    replaying the stream prefix:
    ``generate_program(derive_seed(seed, i))``.
    """
    i = 0
    while True:
        yield i, generate_program(derive_seed(seed, i), config)
        i += 1


def derive_seed(master: int, index: int) -> int:
    """The seed for campaign program ``index`` under ``master``."""
    # Mirrors the runtime's SHA-based stream idea at much lower cost:
    # a fixed odd multiplier decorrelates consecutive indices.
    return (master * 0x9E3779B97F4A7C15 + index) % (2**63)


# ---------------------------------------------------------------------------
# Hypothesis front end (lazy import: repro.qa works without hypothesis)
# ---------------------------------------------------------------------------


def programs(allow_loops: bool = True, config: Optional[GenConfig] = None):
    """Hypothesis strategy for random well-formed PROB programs.

    Every decision routes through ``draw``, so hypothesis's shrinker
    applies.  Requires hypothesis (a test dependency); imported lazily
    so the fuzzer never needs it.
    """
    from hypothesis import strategies as st

    cfg = config if config is not None else DEFAULT_CONFIG
    if not allow_loops:
        cfg = replace(cfg, allow_loops=False)

    @st.composite
    def _programs(draw) -> Program:
        return build_program(_HypothesisChooser(draw), cfg)

    return _programs()


class _HypothesisChooser(Chooser):
    """Chooser that answers every decision via a hypothesis ``draw``."""

    def __init__(self, draw) -> None:
        self._draw = draw

    def integer(self, lo: int, hi: int) -> int:
        from hypothesis import strategies as st

        return self._draw(st.integers(min_value=lo, max_value=hi))

    def choice(self, options: Sequence):
        from hypothesis import strategies as st

        return self._draw(st.sampled_from(list(options)))

    def boolean(self) -> bool:
        from hypothesis import strategies as st

        return self._draw(st.booleans())


def bool_exprs(defined: Sequence[str], config: GenConfig = DEFAULT_CONFIG):
    """Hypothesis strategy: boolean expressions over ``defined``."""
    from hypothesis import strategies as st

    @st.composite
    def _exprs(draw) -> Expr:
        return build_bool_expr(_HypothesisChooser(draw), list(defined), config)

    return _exprs()


def int_exprs(defined: Sequence[str], config: GenConfig = DEFAULT_CONFIG):
    """Hypothesis strategy: small integer expressions over ``defined``."""
    from hypothesis import strategies as st

    @st.composite
    def _exprs(draw) -> Expr:
        return build_int_expr(_HypothesisChooser(draw), list(defined), config)

    return _exprs()


# ---------------------------------------------------------------------------
# Seed-corpus reader/writer
# ---------------------------------------------------------------------------


def save_program(
    path: Union[str, Path],
    program: Program,
    header: Optional[str] = None,
) -> Path:
    """Write ``program`` to ``path`` in canonical ``.prob`` syntax.

    ``header`` lines (if any) are emitted as ``//`` comments, so
    provenance (generator seed, oracle that failed) travels with the
    file.  The parent directory is created if needed.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = pretty(program)
    if header:
        lines = "".join(f"// {line}\n" for line in header.splitlines())
        text = lines + text
    path.write_text(text)
    return path


def load_program(path: Union[str, Path]) -> Program:
    """Parse a ``.prob`` corpus file back into a program."""
    return parse(Path(path).read_text())


def iter_corpus(directory: Union[str, Path]) -> Iterator[Tuple[Path, Program]]:
    """Yield ``(path, program)`` for every ``.prob`` file under
    ``directory``, in sorted order (deterministic replay)."""
    root = Path(directory)
    if not root.is_dir():
        return
    for path in sorted(root.rglob("*.prob")):
        yield path, load_program(path)
