"""``python -m repro.qa`` — the QA command line.

Subcommands:

* ``fuzz`` — a seeded, time-budgeted differential fuzzing campaign.
  Exit status 1 when any oracle disagreement was found.
* ``replay`` — push a ``.prob`` corpus directory through the oracles
  (the regression check CI runs on ``tests/qa_corpus``).
* ``shrink`` — minimize a failing ``.prob`` file against the oracles.

All subcommands accept ``--oracles`` (comma-separated subset of
``backends,exact,bayesnet,samplers,factorization,slicers``),
``--samples``
(per-engine draw
count for the statistical oracle), and observability flags
(``--trace FILE`` / ``--metrics-summary``) that record ``qa.*`` spans
and counters via :mod:`repro.obs`.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import List, Optional

from ..core.parser import ProbSyntaxError
from ..core.printer import pretty
from .fuzz import fuzz, replay
from .generate import DEFAULT_CONFIG, load_program
from .oracles import (
    OracleConfig,
    default_oracle_names,
    make_oracles,
    run_oracles,
)
from .shrink import shrink

__all__ = ["main"]


def _add_oracle_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--oracles",
        default=",".join(default_oracle_names()),
        help=(
            "comma-separated oracle subset "
            "(backends,exact,bayesnet,samplers,factorization,slicers)"
        ),
    )
    parser.add_argument(
        "--samples",
        type=int,
        default=OracleConfig().n_samples,
        help="draws per engine in the statistical oracle",
    )
    parser.add_argument(
        "--alpha",
        type=float,
        default=OracleConfig().alpha,
        help="family-wise false-alarm budget for the statistical oracle",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="write a JSONL span/metric trace of the run",
    )
    parser.add_argument(
        "--metrics-summary",
        action="store_true",
        help="print a counter/span summary at the end",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.qa",
        description="Differential fuzzing & QA for the slicing pipeline.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fz = sub.add_parser("fuzz", help="run a fuzzing campaign")
    fz.add_argument("--time-budget", type=float, default=60.0, metavar="SECONDS")
    fz.add_argument("--seed", type=int, default=0)
    fz.add_argument(
        "--max-programs",
        type=int,
        default=None,
        help="stop after this many candidate programs",
    )
    fz.add_argument(
        "--corpus",
        metavar="DIR",
        help="write shrunk counterexamples + reports here",
    )
    fz.add_argument(
        "--no-shrink",
        action="store_true",
        help="report raw counterexamples without minimizing",
    )
    fz.add_argument(
        "--no-loops",
        action="store_true",
        help="generate loop-free programs only",
    )
    fz.add_argument(
        "--max-stmts",
        type=int,
        default=DEFAULT_CONFIG.max_top_stmts,
        help="top-level statement budget per generated program",
    )
    fz.add_argument(
        "--components",
        type=int,
        default=DEFAULT_CONFIG.n_components,
        help=(
            "statically independent components per generated program "
            "(factorisation stress; 1 = historical family)"
        ),
    )
    _add_oracle_args(fz)

    rp = sub.add_parser("replay", help="replay a corpus through the oracles")
    rp.add_argument("corpus", metavar="DIR", help="directory of .prob files")
    _add_oracle_args(rp)

    sh = sub.add_parser("shrink", help="minimize a failing program")
    sh.add_argument("file", metavar="FILE.prob")
    _add_oracle_args(sh)

    return parser


def _oracle_config(args, n_comparisons: int) -> OracleConfig:
    return replace(
        OracleConfig(),
        n_samples=args.samples,
        alpha=args.alpha,
        n_comparisons=n_comparisons,
    )


def _run(args) -> int:
    names = [n.strip() for n in args.oracles.split(",") if n.strip()]
    if args.command == "fuzz":
        gen_config = DEFAULT_CONFIG
        if args.no_loops:
            gen_config = replace(gen_config, allow_loops=False)
        if args.max_stmts != gen_config.max_top_stmts:
            gen_config = replace(gen_config, max_top_stmts=args.max_stmts)
        if args.components != gen_config.n_components:
            gen_config = replace(gen_config, n_components=args.components)
        oracles = make_oracles(names, config=_oracle_config(args, 10_000))
        stats = fuzz(
            time_budget=args.time_budget,
            seed=args.seed,
            oracles=oracles,
            gen_config=gen_config,
            corpus_dir=args.corpus,
            max_programs=args.max_programs,
            shrink_failures=not args.no_shrink,
        )
        print(stats.summary())
        for crash in stats.crashes:
            print(f"--- crash (program {crash.index}, shrunk to "
                  f"{crash.shrunk_size} statements) ---")
            for d in crash.shrunk_disagreements or crash.disagreements:
                print(f"  {d.describe()}")
            print(pretty(crash.shrunk), end="")
        return 0 if stats.clean else 1
    if args.command == "replay":
        oracles = make_oracles(names, config=_oracle_config(args, 1_000))
        failures = replay(args.corpus, oracles=oracles)
        total = sum(len(ds) for _, ds in failures)
        if failures:
            for path, ds in failures:
                print(f"{path}:")
                for d in ds:
                    print(f"  {d.describe()}")
            print(f"replay: {total} disagreements in {len(failures)} files")
            return 1
        print("replay: corpus clean")
        return 0
    # shrink
    oracles = make_oracles(names, config=_oracle_config(args, 1_000))
    try:
        program = load_program(args.file)
    except (OSError, ProbSyntaxError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    disagreements = run_oracles(program, oracles)
    if not disagreements:
        print("program does not fail any selected oracle", file=sys.stderr)
        return 1
    result = shrink(program, lambda q: bool(run_oracles(q, oracles)))
    for d in run_oracles(result.program, oracles):
        print(f"// {d.describe()}")
    print(pretty(result.program), end="")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if not (args.trace or args.metrics_summary):
        return _run(args)
    from ..obs import TraceRecorder, format_metrics_summary, use_recorder, write_trace

    recorder = TraceRecorder()
    with use_recorder(recorder):
        status = _run(args)
    if args.trace:
        n = write_trace(recorder, args.trace, "jsonl")
        print(f"// trace: {n} records -> {args.trace}", file=sys.stderr)
    if args.metrics_summary:
        print(format_metrics_summary(recorder))
    return status


if __name__ == "__main__":
    sys.exit(main())
