"""Delta-debugging counterexample shrinking.

Given a failing program and a predicate ("these oracles still
disagree"), :func:`shrink` greedily applies single-step reductions —
statement-span deletion (ddmin-style, large spans first), branch and
loop-body inlining, and expression simplification — re-validating and
re-testing after each step, until no reduction preserves the failure.
The result is a *1-minimal-ish* counterexample: every statement left
matters.

Candidates that break def-before-use are rejected before the
(expensive) predicate runs.  Every accepted reduction bumps the
``qa.shrink_steps`` counter; every predicate evaluation bumps
``qa.shrink_candidates`` — so a trace of a fuzz campaign shows exactly
how hard minimization worked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List

from ..core.ast import (
    SKIP,
    Binary,
    Block,
    Const,
    Expr,
    If,
    Observe,
    Program,
    Stmt,
    Unary,
    Var,
    While,
    block_items,
    is_skip,
    seq,
    statement_count,
)
from ..core.validate import ValidationError, check_def_before_use
from ..obs.recorder import current_recorder

__all__ = ["ShrinkResult", "shrink", "reductions"]


@dataclass(frozen=True)
class ShrinkResult:
    """Outcome of a shrink run.

    ``steps`` counts accepted reductions, ``candidates`` the predicate
    evaluations (accepted + rejected).
    """

    program: Program
    steps: int
    candidates: int

    @property
    def size(self) -> int:
        return statement_count(self.program.body)


def _is_valid(program: Program) -> bool:
    try:
        check_def_before_use(program)
    except ValidationError:
        return False
    return True


# ---------------------------------------------------------------------------
# Single-step reductions
# ---------------------------------------------------------------------------


def _expr_reductions(expr: Expr) -> Iterator[Expr]:
    """Smaller expressions that could replace ``expr``.

    Subterms first (they preserve the most structure), then boolean
    constants for non-constant expressions.
    """
    if isinstance(expr, Binary):
        yield expr.left
        yield expr.right
        for r in _expr_reductions(expr.left):
            yield Binary(expr.op, r, expr.right)
        for r in _expr_reductions(expr.right):
            yield Binary(expr.op, expr.left, r)
    elif isinstance(expr, Unary):
        yield expr.operand
        for r in _expr_reductions(expr.operand):
            yield Unary(expr.op, r)
    elif isinstance(expr, Var):
        # Variables are leaves; constants would change which variables
        # the program reads, handled well enough by statement deletion.
        return


def _spans(n: int) -> Iterator[tuple]:
    """Deletion spans ``(start, length)`` over an ``n``-statement
    block, largest first (classic ddmin schedule: halves, quarters,
    then singles)."""
    size = n // 2
    while size >= 1:
        for start in range(0, n - size + 1, size):
            yield start, size
        if size == 1:
            break
        size //= 2
    if n == 1:
        yield 0, 1


def _stmt_reductions(stmt: Stmt) -> Iterator[Stmt]:
    """Single-step reductions of one statement (possibly to ``SKIP``)."""
    if isinstance(stmt, Block):
        items: List[Stmt] = list(stmt.stmts)
        n = len(items)
        seen = set()
        for start, size in _spans(n):
            if (start, size) in seen:
                continue
            seen.add((start, size))
            yield seq(*(items[:start] + items[start + size :]))
        for i, child in enumerate(items):
            for r in _stmt_reductions(child):
                yield seq(*(items[:i] + [r] + items[i + 1 :]))
    elif isinstance(stmt, If):
        yield stmt.then_branch
        yield stmt.else_branch
        for r in _stmt_reductions(stmt.then_branch):
            yield If(stmt.cond, r, stmt.else_branch)
        for r in _stmt_reductions(stmt.else_branch):
            yield If(stmt.cond, stmt.then_branch, r)
        for c in _expr_reductions(stmt.cond):
            yield If(c, stmt.then_branch, stmt.else_branch)
    elif isinstance(stmt, While):
        yield SKIP
        yield stmt.body  # unroll once, drop the loop
        for r in _stmt_reductions(stmt.body):
            yield While(stmt.cond, r)
        for c in _expr_reductions(stmt.cond):
            yield While(c, stmt.body)
    elif isinstance(stmt, Observe):
        for c in _expr_reductions(stmt.cond):
            yield Observe(c)
    elif not is_skip(stmt):
        # Samples/assigns/factors: deletion (at the block level) is the
        # only reduction; their right-hand sides are already minimal
        # for counterexample-reading purposes.
        return


def reductions(program: Program) -> Iterator[Program]:
    """All single-step reductions of ``program``.

    Statement reductions first (largest deletions first — the ddmin
    schedule), then return-expression simplifications.  Invalid
    candidates (def-before-use violations) are filtered by the caller.
    """
    body_as_block = seq(*block_items(program.body))
    for r in _stmt_reductions(body_as_block):
        yield Program(r, program.ret)
    for r in _expr_reductions(program.ret):
        yield Program(program.body, r)
    # Last resort: a constant return isolates failures that do not
    # depend on the returned value at all (e.g. backend divergence).
    if not isinstance(program.ret, Const):
        yield Program(program.body, Const(True))


# ---------------------------------------------------------------------------
# The greedy shrink loop
# ---------------------------------------------------------------------------


def shrink(
    program: Program,
    predicate: Callable[[Program], bool],
    max_candidates: int = 5_000,
) -> ShrinkResult:
    """Greedily minimize ``program`` while ``predicate`` holds.

    ``predicate(candidate)`` must return True iff the candidate still
    exhibits the failure (the fuzz driver re-runs its oracles).  The
    original program is assumed failing; callers should verify that
    before shrinking.  ``max_candidates`` bounds total predicate
    evaluations, so shrinking always terminates quickly even when the
    predicate is expensive.
    """
    rec = current_recorder()
    current = program
    steps = 0
    candidates = 0
    with rec.span("qa.shrink"):
        improved = True
        while improved and candidates < max_candidates:
            improved = False
            for candidate in reductions(current):
                if candidates >= max_candidates:
                    break
                if statement_count(candidate.body) > statement_count(
                    current.body
                ):
                    continue
                if candidate == current or not _is_valid(candidate):
                    continue
                candidates += 1
                rec.counter("qa.shrink_candidates")
                if predicate(candidate):
                    current = candidate
                    steps += 1
                    rec.counter("qa.shrink_steps")
                    improved = True
                    break
    return ShrinkResult(program=current, steps=steps, candidates=candidates)
