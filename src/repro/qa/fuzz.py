"""The differential fuzzing campaign driver.

:func:`fuzz` runs a seeded, time-budgeted loop: generate a program,
run every oracle, and on any disagreement shrink the program to a
minimal counterexample and write it (plus the full disagreement
report) into a crash-corpus directory.  Everything is deterministic
under a fixed master seed — program ``i`` of a campaign can always be
regenerated in isolation via
``generate_program(derive_seed(seed, i))``.

Instrumentation (:mod:`repro.obs`): the campaign runs inside a
``qa.fuzz`` span with one ``qa.program`` span per candidate, and
maintains the counters

* ``qa.programs`` — programs generated and checked,
* ``qa.degenerate`` — programs skipped because every run is blocked
  (zero normalizer — Theorem 1's excluded case),
* ``qa.disagreements`` — oracle violations found,
* ``qa.shrink_steps`` / ``qa.shrink_candidates`` — minimization work
  (bumped by :mod:`repro.qa.shrink`).

:func:`replay` pushes an existing corpus (e.g. the checked-in
``tests/qa_corpus``) through the oracles — the regression half of the
QA story: every counterexample the fuzzer ever found stays fixed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from ..core.ast import Program, statement_count
from ..core.fingerprint import program_fingerprint
from ..obs.recorder import current_recorder
from ..semantics.exact import ExactEngineError, exact_inference
from .generate import (
    DEFAULT_CONFIG,
    GenConfig,
    derive_seed,
    generate_program,
    iter_corpus,
    save_program,
)
from .oracles import (
    Disagreement,
    Oracle,
    OracleConfig,
    format_report,
    make_oracles,
    run_oracles,
)
from .shrink import shrink

__all__ = ["Crash", "FuzzStats", "fuzz", "replay", "write_crash"]


@dataclass(frozen=True)
class Crash:
    """One fuzzer finding: the program, its minimized form, and the
    disagreements each produced."""

    seed: int
    index: int
    program: Program
    disagreements: Tuple[Disagreement, ...]
    shrunk: Program
    shrunk_disagreements: Tuple[Disagreement, ...]
    shrink_steps: int

    @property
    def shrunk_size(self) -> int:
        return statement_count(self.shrunk.body)


@dataclass
class FuzzStats:
    """Campaign summary."""

    programs: int = 0
    degenerate: int = 0
    disagreements: int = 0
    crashes: List[Crash] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    seed: int = 0

    @property
    def clean(self) -> bool:
        return self.disagreements == 0

    def summary(self) -> str:
        return (
            f"fuzz: {self.programs} programs "
            f"({self.degenerate} degenerate skipped) in "
            f"{self.elapsed_seconds:.1f}s, "
            f"{self.disagreements} disagreements, "
            f"{len(self.crashes)} crash reports"
        )


def _is_degenerate(program: Program) -> bool:
    """True when the program has no permitted terminating run (or the
    exact engine cannot decide cheaply) — Theorem 1 excludes those."""
    try:
        exact_inference(program)
    except ValueError:
        return True
    except ExactEngineError:
        # State-space blow-up: the exact oracles skip it anyway, and
        # sampler comparisons without an exact reference are weak, so
        # spend the budget elsewhere.
        return True
    return False


def write_crash(
    corpus_dir: Union[str, Path],
    crash: Crash,
) -> Tuple[Path, Path]:
    """Persist a crash: the *shrunk* program as a replayable ``.prob``
    file plus a full report alongside it."""
    corpus_dir = Path(corpus_dir)
    tag = program_fingerprint(crash.program)[:12]
    prob_path = corpus_dir / f"crash-{tag}.prob"
    header = (
        f"shrunk counterexample (campaign seed {crash.seed}, "
        f"program {crash.index}; "
        f"{statement_count(crash.program.body)} -> "
        f"{crash.shrunk_size} statements)\n"
        + "\n".join(d.describe() for d in crash.shrunk_disagreements)
    )
    save_program(prob_path, crash.shrunk, header=header)
    report_path = corpus_dir / f"crash-{tag}.report.txt"
    report_path.write_text(
        format_report(
            crash.program,
            crash.disagreements,
            shrunk=crash.shrunk,
            seed=derive_seed(crash.seed, crash.index),
        )
    )
    return prob_path, report_path


def fuzz(
    time_budget: float = 60.0,
    seed: int = 0,
    oracles: Optional[Sequence[Oracle]] = None,
    oracle_names: Optional[Sequence[str]] = None,
    oracle_config: Optional[OracleConfig] = None,
    gen_config: GenConfig = DEFAULT_CONFIG,
    corpus_dir: Optional[Union[str, Path]] = None,
    max_programs: Optional[int] = None,
    shrink_failures: bool = True,
    on_progress=None,
) -> FuzzStats:
    """Run a differential fuzzing campaign.

    Stops at ``time_budget`` wall seconds (the program being checked
    when the budget expires still completes) or after ``max_programs``
    candidates.  ``oracles`` wins over ``oracle_names``/
    ``oracle_config`` when given.  ``on_progress(stats)`` is invoked
    after every program — the CLI uses it for a status line.
    """
    if oracles is None:
        config = oracle_config if oracle_config is not None else OracleConfig()
        if config.n_comparisons <= 1:
            # Bonferroni over a rough campaign-size estimate: the exact
            # count is unknowable up front (it depends on how many
            # programs fit the budget); a generous constant keeps the
            # family-wise rate bounded without destroying power.
            config = replace(config, n_comparisons=10_000)
        oracles = make_oracles(oracle_names, config=config)
    stats = FuzzStats(seed=seed)
    rec = current_recorder()
    deadline = time.perf_counter() + time_budget
    start = time.perf_counter()
    with rec.span("qa.fuzz", seed=seed, time_budget=time_budget):
        index = 0
        while time.perf_counter() < deadline:
            if max_programs is not None and index >= max_programs:
                break
            program_seed = derive_seed(seed, index)
            program = generate_program(program_seed, gen_config)
            with rec.span("qa.program", index=index):
                if _is_degenerate(program):
                    stats.degenerate += 1
                    rec.counter("qa.degenerate")
                else:
                    stats.programs += 1
                    rec.counter("qa.programs")
                    disagreements = run_oracles(program, oracles)
                    if disagreements:
                        stats.disagreements += len(disagreements)
                        rec.counter("qa.disagreements", len(disagreements))
                        crash = _shrink_crash(
                            seed,
                            index,
                            program,
                            disagreements,
                            oracles,
                            shrink_failures,
                        )
                        stats.crashes.append(crash)
                        if corpus_dir is not None:
                            write_crash(corpus_dir, crash)
            index += 1
            if on_progress is not None:
                stats.elapsed_seconds = time.perf_counter() - start
                on_progress(stats)
    stats.elapsed_seconds = time.perf_counter() - start
    return stats


def _shrink_crash(
    seed: int,
    index: int,
    program: Program,
    disagreements: List[Disagreement],
    oracles: Sequence[Oracle],
    shrink_failures: bool,
) -> Crash:
    if shrink_failures:
        result = shrink(program, lambda q: bool(run_oracles(q, oracles)))
        shrunk = result.program
        steps = result.steps
        shrunk_disagreements = tuple(run_oracles(shrunk, oracles))
    else:
        shrunk = program
        steps = 0
        shrunk_disagreements = tuple(disagreements)
    return Crash(
        seed=seed,
        index=index,
        program=program,
        disagreements=tuple(disagreements),
        shrunk=shrunk,
        shrunk_disagreements=shrunk_disagreements,
        shrink_steps=steps,
    )


def replay(
    corpus_dir: Union[str, Path],
    oracles: Optional[Sequence[Oracle]] = None,
    oracle_names: Optional[Sequence[str]] = None,
    oracle_config: Optional[OracleConfig] = None,
) -> List[Tuple[Path, List[Disagreement]]]:
    """Run every ``.prob`` file in ``corpus_dir`` through the oracles.

    Returns ``(path, disagreements)`` for *failing* files only (an
    empty list means the whole corpus is clean).
    """
    if oracles is None:
        config = oracle_config if oracle_config is not None else OracleConfig(
            n_comparisons=1_000
        )
        oracles = make_oracles(oracle_names, config=config)
    rec = current_recorder()
    failures: List[Tuple[Path, List[Disagreement]]] = []
    with rec.span("qa.replay"):
        for path, program in iter_corpus(corpus_dir):
            rec.counter("qa.programs")
            with rec.span("qa.program", file=str(path)):
                disagreements = run_oracles(program, oracles)
            if disagreements:
                rec.counter("qa.disagreements", len(disagreements))
                failures.append((path, disagreements))
    return failures
