"""Differential testing & QA for the slicing pipeline.

Standing correctness tooling for Theorem 1: a typed, termination-
biased program generator (:mod:`repro.qa.generate` — the same one the
hypothesis property suite consumes), distribution-equivalence and
differential oracles over the inference engines, execution backends,
and pass pipelines (:mod:`repro.qa.oracles`), a delta-debugging
counterexample shrinker (:mod:`repro.qa.shrink`), and a seeded,
time-budgeted campaign driver with a crash corpus
(:mod:`repro.qa.fuzz`).

Command line::

    python -m repro.qa fuzz --time-budget 60 --seed 0 --corpus crashes/
    python -m repro.qa replay tests/qa_corpus
    python -m repro.qa shrink failing.prob
"""

from .fuzz import Crash, FuzzStats, fuzz, replay, write_crash
from .generate import (
    DEFAULT_CONFIG,
    Chooser,
    GenConfig,
    RandomChooser,
    build_program,
    derive_seed,
    generate_program,
    iter_corpus,
    load_program,
    program_stream,
    programs,
    save_program,
)
from .oracles import (
    ORACLE_TYPES,
    BackendEquivalenceOracle,
    BayesNetOracle,
    Disagreement,
    ExactEquivalenceOracle,
    FactorizationOracle,
    Oracle,
    OracleConfig,
    SamplerEquivalenceOracle,
    SlicerArbitrationOracle,
    default_oracle_names,
    format_report,
    make_oracles,
    run_oracles,
)
from .shrink import ShrinkResult, reductions, shrink

__all__ = [
    "Crash",
    "FuzzStats",
    "fuzz",
    "replay",
    "write_crash",
    "DEFAULT_CONFIG",
    "Chooser",
    "GenConfig",
    "RandomChooser",
    "build_program",
    "derive_seed",
    "generate_program",
    "iter_corpus",
    "load_program",
    "program_stream",
    "programs",
    "save_program",
    "ORACLE_TYPES",
    "BackendEquivalenceOracle",
    "BayesNetOracle",
    "Disagreement",
    "ExactEquivalenceOracle",
    "FactorizationOracle",
    "Oracle",
    "OracleConfig",
    "SamplerEquivalenceOracle",
    "SlicerArbitrationOracle",
    "default_oracle_names",
    "format_report",
    "make_oracles",
    "run_oracles",
    "ShrinkResult",
    "reductions",
    "shrink",
]
