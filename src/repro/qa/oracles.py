"""Distribution-equivalence and differential oracles.

Theorem 1 guarantees ``P`` and ``SLI(P)`` have identical normalized
output distributions.  The oracles here turn that guarantee (and the
repository's backend-equivalence guarantees) into executable checks a
fuzz campaign can run at scale:

* :class:`ExactEquivalenceOracle` — for finite programs, the
  enumeration engine computes the exact output distribution of the
  original and of every distribution-preserving pipeline variant
  (``sli``, ``sli --simplify``, ``sli`` without OBS, ``nt_slice``);
  total-variation distance must be zero (up to float tolerance).
  ``naive_slice`` is *excluded* from this check on purpose: it is the
  paper's known-unsound baseline (Example 4 — it drops observes).
* :class:`BackendEquivalenceOracle` — the interpreter and the compiled
  executor must produce *bit-identical* runs (value, likelihood,
  trace, statement count) from the same RNG stream, on the original
  and on every pipeline variant (``naive_slice`` included: unsound as
  a slicer, its output is still a program both backends must agree on).
  Vectorizable variants get the third backend locked in as well: every
  interpreter run must replay bit-exactly through the array backend
  (:mod:`repro.semantics.vectorized`) at batch 1, and every lane of a
  fresh vectorized batch must replay bit-exactly through *both* scalar
  backends — trace replay is the cross-backend equivalence mechanism,
  since the PCG64 and Mersenne streams can never bit-match.
* :class:`BayesNetOracle` — for loop-free compilable programs,
  Bayes-net compilation + variable elimination must match enumeration.
* :class:`SamplerEquivalenceOracle` — every sampling engine, run with
  a fixed derived seed stream on the original and on the ``sli``
  slice, must pass a chi-square goodness-of-fit test against the
  exact distribution (Bonferroni-corrected so a campaign of thousands
  of programs keeps a bounded family-wise false-alarm rate).  Weighted
  samplers (likelihood weighting, SMC) are tested at their Kish
  effective sample size.
* :class:`FactorizationOracle` — the factorisation pass
  (``sli --factorize``) must be exact: the product of the per-factor
  posteriors recombined through the original return expression matches
  the monolithic exact posterior with zero TV distance, and the factor
  bodies partition the sliced program.
* :class:`SlicerArbitrationOracle` — both slicing *theories*
  (``svf``, the paper's OBS→SVF→SSA composition, and ``ab``, the
  Amtoft–Banerjee CFG slicer) must each be distribution-equivalent to
  the original: exact TV (float-)zero where the enumerator reaches,
  and a two-sample chi-square homogeneity test on likelihood-weighted
  sample streams otherwise.  Slice-*size* divergence between the two
  theories is expected (they keep different node sets) and is
  *recorded*, never failed — the arbitration record is the
  experiment's data, surfaced via ``qa.slicers.*`` counters and
  :attr:`SlicerArbitrationOracle.size_records`.

Every oracle reports :class:`Disagreement` records and never raises
on *expected* inapplicability (continuous programs, zero normalizers,
unsupported features) — those are skips, counted by the campaign.  An
unexpected exception inside an engine or transform *is* reported as a
disagreement of kind ``crash``: the fuzzer's job is exactly to find
those.
"""

from __future__ import annotations

import math
import random
import traceback
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.ast import Program
from ..core.fingerprint import program_fingerprint
from ..core.printer import pretty
from ..inference import (
    ChurchTraceMH,
    GibbsSampler,
    InferenceError,
    LikelihoodWeighting,
    MetropolisHastings,
    RejectionSampler,
    SMCSampler,
    UnsupportedProgramError,
    has_loop,
    has_soft_conditioning,
)
from ..semantics.distribution import FiniteDist
from ..semantics.exact import ExactEngineError, ExactResult, exact_inference
from ..semantics.executor import NonTerminatingRun, run_program
from ..obs.recorder import current_recorder
from ..semantics.factored import factored_exact
from ..transforms import naive_slice, node_class_counts, nt_slice, sli

__all__ = [
    "Disagreement",
    "OracleConfig",
    "Oracle",
    "ExactEquivalenceOracle",
    "BackendEquivalenceOracle",
    "BayesNetOracle",
    "SamplerEquivalenceOracle",
    "FactorizationOracle",
    "SlicerArbitrationOracle",
    "ORACLE_TYPES",
    "default_oracle_names",
    "make_oracles",
    "run_oracles",
    "format_report",
    "chi_square_gof",
    "chi_square_homogeneity",
    "chi2_sf",
]


@dataclass(frozen=True)
class Disagreement:
    """One oracle violation.

    ``kind`` is ``"distribution"`` (normalized output distributions
    differ), ``"backend"`` (interpreter and compiled executor
    diverged), ``"statistical"`` (a sampler failed its goodness-of-fit
    test beyond the corrected threshold), or ``"crash"`` (an engine or
    transform raised an unexpected exception).  ``subject`` and
    ``reference`` name the two sides that were compared; ``metric`` is
    the oracle's distance/p-value when one exists.
    """

    oracle: str
    kind: str
    subject: str
    reference: str
    detail: str
    metric: Optional[float] = None

    def describe(self) -> str:
        m = "" if self.metric is None else f" (metric={self.metric:.3g})"
        return (
            f"[{self.oracle}] {self.kind}: {self.subject} vs "
            f"{self.reference}{m}: {self.detail}"
        )


@dataclass(frozen=True)
class OracleConfig:
    """Shared oracle tuning.

    ``alpha`` is the *family-wise* false-alarm budget of the whole
    campaign for the statistical oracle; each individual test runs at
    ``alpha / max(1, n_comparisons)`` (Bonferroni).  The campaign
    driver sets ``n_comparisons`` to its total planned test count.
    Fixed seeds make every check deterministic: a passing campaign
    passes forever.
    """

    #: RNG seeds for the backend trace-equality runs.
    seeds: Tuple[int, ...] = (0, 1, 2)
    #: Draws per sampling engine in the statistical oracle.
    n_samples: int = 1200
    #: Family-wise false-alarm budget for the statistical oracle.
    alpha: float = 1e-4
    #: Bonferroni divisor (number of statistical tests in the family).
    n_comparisons: int = 1
    #: Absolute tolerance for the exact-distribution comparison.
    atol: float = 1e-9
    #: Sampling engines exercised by the statistical oracle.  The
    #: ``-numpy`` variants run the same engines on the array backend
    #: (``compiled="numpy"``), falling back to the closure backend on
    #: non-vectorizable programs — either way the sampled stream must
    #: fit the exact distribution.
    engines: Tuple[str, ...] = (
        "rejection",
        "importance",
        "mh",
        "church",
        "gibbs",
        "smc",
        "rejection-numpy",
        "importance-numpy",
        "mh-numpy",
        "smc-numpy",
    )
    #: MH burn-in (kept small — QA programs are tiny).
    burn_in: int = 200
    #: Attempt budget multiplier for rejection sampling.
    max_attempts_factor: int = 400

    @property
    def corrected_alpha(self) -> float:
        return self.alpha / max(1, self.n_comparisons)


# ---------------------------------------------------------------------------
# Pipeline variants under test
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Variant:
    """One transformed version of the program under test."""

    name: str
    program: Program
    #: Whether Theorem 1 applies (``naive_slice`` is the known-unsound
    #: baseline, so only backend self-consistency is checked on it).
    distribution_preserving: bool


def program_variants(program: Program) -> Tuple[List[Variant], List[Disagreement]]:
    """All pipeline variants of ``program``, plus crash reports for
    any pipeline that failed to run at all."""
    variants = [Variant("original", program, True)]
    crashes: List[Disagreement] = []
    builders: List[Tuple[str, bool, Callable[[Program], Program]]] = [
        ("sli", True, lambda p: sli(p).sliced),
        ("sli+simplify", True, lambda p: sli(p, simplify=True).sliced),
        ("sli-no-obs", True, lambda p: sli(p, use_obs=False).sliced),
        ("sli-ab", True, lambda p: sli(p, slicer="ab").sliced),
        ("nt_slice", True, lambda p: nt_slice(p).sliced),
        ("naive_slice", False, lambda p: naive_slice(p).sliced),
    ]
    for name, preserving, build in builders:
        try:
            variants.append(Variant(name, build(program), preserving))
        except Exception:
            crashes.append(
                Disagreement(
                    oracle="transform",
                    kind="crash",
                    subject=name,
                    reference="original",
                    detail=traceback.format_exc(limit=6),
                )
            )
    return variants, crashes


# ---------------------------------------------------------------------------
# Chi-square machinery (scipy-gated with a pure-python fallback)
# ---------------------------------------------------------------------------


def chi2_sf(stat: float, dof: int) -> float:
    """Chi-square survival function ``P(X >= stat)``.

    Uses scipy when available; otherwise the regularized upper
    incomplete gamma function ``Q(dof/2, stat/2)`` via the standard
    series / continued-fraction split (Numerical Recipes ``gammq``).
    """
    if stat <= 0.0:
        return 1.0
    if dof <= 0:
        return 1.0
    try:
        from scipy.stats import chi2

        return float(chi2.sf(stat, dof))
    except ImportError:  # pragma: no cover - exercised without scipy only
        return _gammq(dof / 2.0, stat / 2.0)


def _gammq(a: float, x: float) -> float:  # pragma: no cover - scipy fallback
    """Regularized upper incomplete gamma ``Q(a, x)``."""
    if x < a + 1.0:
        # Series for P(a, x); Q = 1 - P.
        term = 1.0 / a
        total = term
        n = a
        for _ in range(500):
            n += 1.0
            term *= x / n
            total += term
            if abs(term) < abs(total) * 1e-15:
                break
        p = total * math.exp(-x + a * math.log(x) - math.lgamma(a))
        return max(0.0, 1.0 - p)
    # Continued fraction for Q(a, x) (modified Lentz).
    tiny = 1e-300
    b = x + 1.0 - a
    c = 1.0 / tiny
    d = 1.0 / b
    h = d
    for i in range(1, 500):
        an = -i * (i - a)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-15:
            break
    return h * math.exp(-x + a * math.log(x) - math.lgamma(a))


def chi_square_gof(
    empirical: FiniteDist,
    expected: FiniteDist,
    n_effective: float,
) -> Tuple[float, float, int]:
    """Pearson goodness-of-fit of ``empirical`` against ``expected``.

    Returns ``(p_value, statistic, dof)``.  Bins with expected count
    below 5 are pooled into one (standard Cochran guard); observing a
    value *outside* the expected support is an immediate fail
    (``p = 0``) — a sampler must never emit an impossible value.
    """
    support = expected.support()
    outside = sum(
        empirical.prob(v) for v in empirical.support() if v not in set(support)
    )
    if outside > 0.0:
        return 0.0, math.inf, max(1, len(support) - 1)
    pooled_obs = 0.0
    pooled_exp = 0.0
    stat = 0.0
    bins = 0
    for v in support:
        e = expected.prob(v) * n_effective
        o = empirical.prob(v) * n_effective
        if e < 5.0:
            pooled_obs += o
            pooled_exp += e
            continue
        stat += (o - e) ** 2 / e
        bins += 1
    if pooled_exp > 0.0:
        stat += (pooled_obs - pooled_exp) ** 2 / pooled_exp
        bins += 1
    dof = bins - 1
    if dof <= 0:
        # Single-bin support: the outside-support check above is the
        # whole test.
        return 1.0, stat, 0
    return chi2_sf(stat, dof), stat, dof


def chi_square_homogeneity(
    dist_a: FiniteDist,
    n_a: float,
    dist_b: FiniteDist,
    n_b: float,
) -> Tuple[float, float, int]:
    """Two-sample Pearson homogeneity test: could ``dist_a`` (observed
    with ``n_a`` effective draws) and ``dist_b`` (``n_b`` draws) have
    come from the same underlying distribution?

    Expected counts come from the *pooled* empirical proportions, so
    neither side is privileged — this is the right shape when no exact
    reference exists and both sides are noisy.  Bins whose expected
    count falls below 5 in either sample are pooled into one (Cochran
    guard).  Returns ``(p_value, statistic, dof)`` with
    ``dof = bins - 1`` (two samples).
    """
    support = sorted(
        set(dist_a.support()) | set(dist_b.support()), key=repr
    )
    total = n_a + n_b
    if total <= 0.0:
        return 1.0, 0.0, 0
    stat = 0.0
    bins = 0
    pooled_obs = [0.0, 0.0]
    pooled_exp = [0.0, 0.0]
    for v in support:
        p = (dist_a.prob(v) * n_a + dist_b.prob(v) * n_b) / total
        expected = (p * n_a, p * n_b)
        observed = (dist_a.prob(v) * n_a, dist_b.prob(v) * n_b)
        if min(expected) < 5.0:
            for i in range(2):
                pooled_obs[i] += observed[i]
                pooled_exp[i] += expected[i]
            continue
        for o, e in zip(observed, expected):
            stat += (o - e) ** 2 / e
        bins += 1
    if min(pooled_exp) > 0.0:
        for o, e in zip(pooled_obs, pooled_exp):
            stat += (o - e) ** 2 / e
        bins += 1
    dof = bins - 1
    if dof <= 0:
        return 1.0, stat, 0
    return chi2_sf(stat, dof), stat, dof


# ---------------------------------------------------------------------------
# The oracles
# ---------------------------------------------------------------------------


class Oracle:
    """Interface: ``check(program)`` returns disagreements (empty =
    agreement), ``applicable(program)`` gates expensive checks."""

    name: str = "oracle"

    def __init__(self, config: OracleConfig = OracleConfig()) -> None:
        self.config = config

    def applicable(self, program: Program) -> bool:
        return True

    def check(self, program: Program) -> List[Disagreement]:
        raise NotImplementedError


def _try_exact(program: Program) -> Optional[ExactResult]:
    """Exact result, or ``None`` for degenerate/out-of-reach programs."""
    try:
        return exact_inference(program)
    except (ValueError, ExactEngineError):
        return None


class ExactEquivalenceOracle(Oracle):
    """TV distance between the original's and every preserving
    variant's exact output distribution must be (float-)zero."""

    name = "exact"

    def check(self, program: Program) -> List[Disagreement]:
        base = _try_exact(program)
        if base is None:
            return []
        variants, out = program_variants(program)
        for variant in variants[1:]:
            if not variant.distribution_preserving:
                continue
            try:
                got = exact_inference(variant.program)
            except (ValueError, ExactEngineError):
                out.append(
                    Disagreement(
                        oracle=self.name,
                        kind="distribution",
                        subject=variant.name,
                        reference="original",
                        detail=(
                            "variant is degenerate/unenumerable but the "
                            "original has a positive normalizer"
                        ),
                    )
                )
                continue
            except Exception:
                out.append(
                    Disagreement(
                        oracle=self.name,
                        kind="crash",
                        subject=variant.name,
                        reference="original",
                        detail=traceback.format_exc(limit=6),
                    )
                )
                continue
            tv = base.distribution.tv_distance(got.distribution)
            if not base.distribution.allclose(
                got.distribution, atol=self.config.atol
            ):
                out.append(
                    Disagreement(
                        oracle=self.name,
                        kind="distribution",
                        subject=variant.name,
                        reference="original",
                        detail=(
                            f"exact output distributions differ: "
                            f"{base.distribution!r} vs {got.distribution!r}"
                        ),
                        metric=tv,
                    )
                )
        return out


class BackendEquivalenceOracle(Oracle):
    """Interpreter vs compiled executor vs array backend.

    Interpreter and closure backend share the ``random.Random`` stream,
    so their runs compare directly.  The array backend draws from PCG64
    and is locked in by *trace replay* in both directions: interpreter
    run → batch-of-1 vectorized replay, and fresh vectorized batch →
    per-lane scalar replays through both other backends.  Programs
    outside the vectorizable fragment skip the third leg (that is the
    contract, not a bug); any other vectorization failure is a crash.
    """

    name = "backends"

    def check(self, program: Program) -> List[Disagreement]:
        from ..semantics.compiled import compile_program as compile_executable
        from ..semantics.vectorized import NotVectorizable, compile_vectorized

        variants, out = program_variants(program)
        for variant in variants:
            try:
                executable = compile_executable(variant.program)
            except Exception:
                out.append(
                    Disagreement(
                        oracle=self.name,
                        kind="crash",
                        subject=f"compiled[{variant.name}]",
                        reference=f"interp[{variant.name}]",
                        detail=traceback.format_exc(limit=6),
                    )
                )
                continue
            try:
                vectorized = compile_vectorized(variant.program)
            except NotVectorizable:
                vectorized = None
            except Exception:
                vectorized = None
                out.append(
                    Disagreement(
                        oracle=self.name,
                        kind="crash",
                        subject=f"vectorized[{variant.name}]",
                        reference=f"interp[{variant.name}]",
                        detail=traceback.format_exc(limit=6),
                    )
                )
            for seed in self.config.seeds:
                out.extend(
                    self._compare_run(variant, executable, seed, vectorized)
                )
            if vectorized is not None:
                for seed in self.config.seeds:
                    out.extend(
                        self._check_lanes(variant, executable, vectorized, seed)
                    )
        return out

    @staticmethod
    def _run_mismatches(lhs, rhs) -> List[str]:
        """Field-by-field comparison of two (scalar) run results."""
        mismatches = []
        for field_name in ("value", "log_likelihood", "statements_executed"):
            a = getattr(lhs, field_name)
            b = getattr(rhs, field_name)
            if a != b:
                mismatches.append(f"{field_name}: {a!r} != {b!r}")
        if lhs.trace != rhs.trace:
            mismatches.append("traces differ")
        return mismatches

    def _check_replay(
        self, variant, vectorized, interp, seed
    ) -> List[Disagreement]:
        """Direction 1: an interpreter run's trace must replay
        bit-exactly through the array backend at batch 1."""
        from ..runtime.parallel import numpy_generator

        where = f"{variant.name}@seed={seed}"
        try:
            batch = vectorized.run_batch(
                numpy_generator(seed, "qa", "replay"),
                1,
                base=vectorized.base_from_trace(interp.trace, 1),
            )
            lane = batch.lane_result(0)
        except Exception:
            return [
                Disagreement(
                    oracle=self.name,
                    kind="crash",
                    subject=f"vectorized[{where}]",
                    reference=f"interp[{where}]",
                    detail=traceback.format_exc(limit=6),
                )
            ]
        mismatches = self._run_mismatches(lane, interp)
        if mismatches:
            return [
                Disagreement(
                    oracle=self.name,
                    kind="backend",
                    subject=f"vectorized[{where}]",
                    reference=f"interp[{where}]",
                    detail="replayed interpreter trace diverged: "
                    + "; ".join(mismatches),
                )
            ]
        return []

    def _check_lanes(
        self, variant, executable, vectorized, seed
    ) -> List[Disagreement]:
        """Direction 2: each lane of a fresh vectorized batch must
        replay bit-exactly through both scalar backends."""
        from ..runtime.parallel import numpy_generator

        where = f"{variant.name}@seed={seed}"
        try:
            batch = vectorized.run_batch(numpy_generator(seed, "qa", "batch"), 3)
        except Exception:
            # Fresh-batch errors (e.g. a division by zero some lane
            # hit) cannot be compared across different RNG streams;
            # the same-stream comparison above owns error behaviour.
            return []
        out: List[Disagreement] = []
        for i in range(batch.batch):
            lane = batch.lane_result(i)
            for backend, run_fn in (
                ("interp", lambda t: run_program(
                    variant.program, random.Random(seed), base_trace=t
                )),
                ("compiled", lambda t: executable.run(
                    random.Random(seed), base_trace=t
                )),
            ):
                try:
                    replayed = run_fn(dict(lane.trace))
                except Exception:
                    out.append(
                        Disagreement(
                            oracle=self.name,
                            kind="backend",
                            subject=f"{backend}[{where}#lane{i}]",
                            reference=f"vectorized[{where}#lane{i}]",
                            detail="lane trace failed to replay: "
                            + traceback.format_exc(limit=6),
                        )
                    )
                    continue
                mismatches = self._run_mismatches(replayed, lane)
                if mismatches:
                    out.append(
                        Disagreement(
                            oracle=self.name,
                            kind="backend",
                            subject=f"{backend}[{where}#lane{i}]",
                            reference=f"vectorized[{where}#lane{i}]",
                            detail="replayed lane diverged: "
                            + "; ".join(mismatches),
                        )
                    )
        return out

    def _compare_run(
        self, variant, executable, seed, vectorized=None
    ) -> List[Disagreement]:
        def run(fn):
            try:
                return fn(random.Random(seed)), None
            except NonTerminatingRun:
                return None, "non-terminating"
            except Exception:
                return None, traceback.format_exc(limit=6)

        interp, interp_err = run(
            lambda rng: run_program(variant.program, rng)
        )
        compiled, compiled_err = run(lambda rng: executable.run(rng))
        where = f"{variant.name}@seed={seed}"
        if interp_err != compiled_err:
            return [
                Disagreement(
                    oracle=self.name,
                    kind="backend",
                    subject=f"compiled[{where}]",
                    reference=f"interp[{where}]",
                    detail=(
                        f"error behaviour differs: interpreter "
                        f"{interp_err or 'succeeded'}, compiled "
                        f"{compiled_err or 'succeeded'}"
                    ),
                )
            ]
        if interp is None:
            return []  # both raised the same way
        mismatches = self._run_mismatches(compiled, interp)
        if mismatches:
            return [
                Disagreement(
                    oracle=self.name,
                    kind="backend",
                    subject=f"compiled[{where}]",
                    reference=f"interp[{where}]",
                    detail="; ".join(mismatches),
                )
            ]
        if vectorized is not None:
            return self._check_replay(variant, vectorized, interp, seed)
        return []


class BayesNetOracle(Oracle):
    """Bayes-net compile + variable elimination vs enumeration."""

    name = "bayesnet"

    def applicable(self, program: Program) -> bool:
        return not has_loop(program)

    def check(self, program: Program) -> List[Disagreement]:
        from ..bayesnet import (
            BayesNetError,
            CompileError,
            compile_program,
            variable_elimination,
        )
        from ..transforms import preprocess

        base = _try_exact(program)
        if base is None:
            return []
        try:
            compiled = compile_program(preprocess(program))
        except CompileError:
            return []
        try:
            post = variable_elimination(
                compiled.net, compiled.query, compiled.evidence
            )
        except BayesNetError:
            # Inconsistent-evidence refusal mirrors a zero normalizer;
            # VE's evidence patterns are narrower than the executor's,
            # so a refusal here is inapplicability, not a bug.
            return []
        except Exception:
            return [
                Disagreement(
                    oracle=self.name,
                    kind="crash",
                    subject="variable-elimination",
                    reference="enumeration",
                    detail=traceback.format_exc(limit=6),
                )
            ]
        if not post.allclose(base.distribution, atol=self.config.atol):
            return [
                Disagreement(
                    oracle=self.name,
                    kind="distribution",
                    subject="variable-elimination",
                    reference="enumeration",
                    detail=(
                        f"VE posterior {post!r} != exact "
                        f"{base.distribution!r}"
                    ),
                    metric=post.tv_distance(base.distribution),
                )
            ]
        return []


class SamplerEquivalenceOracle(Oracle):
    """Every sampling engine, on the original and on the SLI slice,
    must fit the exact distribution (chi-square, Bonferroni)."""

    name = "samplers"

    def check(self, program: Program) -> List[Disagreement]:
        base = _try_exact(program)
        if base is None:
            return []
        out: List[Disagreement] = []
        try:
            sliced = sli(program).sliced
            subjects = [("original", program), ("sli", sliced)]
        except Exception:
            # The exact oracle owns transform crashes; still test the
            # original program here.
            subjects = [("original", program)]
        for engine_name in self.config.engines:
            for subject_name, subject in subjects:
                out.extend(
                    self._check_engine(engine_name, subject_name, subject, base)
                )
        return out

    def _engine(self, engine_name: str, seed: int):
        cfg = self.config
        n = cfg.n_samples
        compiled: "bool | str" = False
        if engine_name.endswith("-numpy"):
            engine_name = engine_name[: -len("-numpy")]
            compiled = "numpy"
        if engine_name == "rejection":
            return RejectionSampler(
                n_samples=n,
                seed=seed,
                max_attempts=n * cfg.max_attempts_factor,
                compiled=compiled,
            )
        if engine_name == "importance":
            return LikelihoodWeighting(n_samples=n, seed=seed, compiled=compiled)
        if engine_name == "mh":
            return MetropolisHastings(
                n_samples=n, burn_in=cfg.burn_in, seed=seed, compiled=compiled
            )
        if engine_name == "church":
            return ChurchTraceMH(
                n_samples=n, burn_in=cfg.burn_in, seed=seed, overhead=1
            )
        if engine_name == "gibbs":
            return GibbsSampler(n_samples=n, burn_in=cfg.burn_in, seed=seed)
        if engine_name == "smc":
            return SMCSampler(n_particles=n, seed=seed, compiled=compiled)
        raise ValueError(f"unknown engine {engine_name!r}")

    def _applicable(self, engine_name: str, program: Program) -> bool:
        engine_name = engine_name.removesuffix("-numpy")
        if engine_name == "rejection" and has_soft_conditioning(program):
            return False
        if engine_name == "gibbs" and has_loop(program):
            return False
        if engine_name == "smc" and has_loop(program):
            # SMC pauses at every conditioning point and a resample
            # clone replays the particle's whole prefix, so observes
            # inside loops make cloning quadratic in the iteration
            # count — far too slow for a fuzz loop.
            return False
        return True

    def _check_engine(
        self,
        engine_name: str,
        subject_name: str,
        program: Program,
        base: ExactResult,
    ) -> List[Disagreement]:
        if not self._applicable(engine_name, program):
            return []
        # A fixed seed derived from (program, engine, subject): the
        # same campaign always draws the same streams, so a passing
        # run is reproducibly passing.
        seed = int(
            program_fingerprint(
                program, engine=engine_name, subject=subject_name
            )[:12],
            16,
        )
        engine = self._engine(engine_name, seed)
        try:
            result = engine.infer(program)
        except (UnsupportedProgramError, InferenceError):
            # Legitimate refusals (unsupported features, exhausted
            # budgets on low-acceptance programs) are skips; the
            # campaign counts them.
            return []
        except Exception:
            return [
                Disagreement(
                    oracle=self.name,
                    kind="crash",
                    subject=f"{engine_name}[{subject_name}]",
                    reference="enumeration",
                    detail=traceback.format_exc(limit=6),
                )
            ]
        try:
            empirical = result.distribution()
        except InferenceError:
            return []
        n_eff = _effective_draws(
            result,
            mcmc=engine_name.removesuffix("-numpy") in ("mh", "church", "gibbs"),
        )
        if n_eff < 50.0:
            return []  # too few effective draws for a meaningful test
        p_value, stat, dof = chi_square_gof(empirical, base.distribution, n_eff)
        if p_value < self.config.corrected_alpha:
            return [
                Disagreement(
                    oracle=self.name,
                    kind="statistical",
                    subject=f"{engine_name}[{subject_name}]",
                    reference="enumeration",
                    detail=(
                        f"chi-square GOF failed: stat={stat:.2f} dof={dof} "
                        f"n_eff={n_eff:.0f} p={p_value:.3g} < "
                        f"alpha={self.config.corrected_alpha:.3g}; "
                        f"tv={empirical.tv_distance(base.distribution):.4f}"
                    ),
                    metric=p_value,
                )
            ]
        return []


def _effective_draws(result, mcmc: bool = False) -> float:
    """Kish effective sample size for weighted results; for MCMC
    chains, the autocorrelation-based ESS (single-site kernels update
    the returned variable only a fraction of the steps, so treating
    the chain as ``n`` independent draws makes the chi-square test
    reject correct engines — the fuzzer found exactly that); the raw
    count otherwise.  Particle populations are additionally capped by
    their surviving lineage count: resampling after a rare hard
    observe can leave thousands of particles descending from a handful
    of ancestors (the burglar-alarm model collapses ~1200 particles to
    ~10 genealogies), and treating those as independent draws makes
    the test reject a correct, merely high-variance engine."""
    if result.weights is None:
        if mcmc:
            from ..inference.base import effective_sample_size

            return effective_sample_size(
                [float(s) for s in result.samples]
            )
        return float(len(result.samples))
    total = sum(result.weights)
    if total <= 0.0:
        return 0.0
    sq = sum(w * w for w in result.weights)
    if sq <= 0.0:
        return 0.0
    kish = total * total / sq
    if result.lineages is not None:
        return min(kish, float(result.lineages))
    return kish


class FactorizationOracle(Oracle):
    """Product of per-factor exact posteriors == monolithic posterior.

    Runs ``sli(P, factorize=True)`` and checks that
    :func:`repro.semantics.factored.factored_exact` over the resulting
    :class:`~repro.transforms.factorize.FactorSet` matches
    ``exact_inference(P)`` with TV distance (float-)zero, and that the
    factor bodies partition the sliced program (sizes sum to the slice
    size when nothing was dropped, and never exceed it).
    """

    name = "factorization"

    def check(self, program: Program) -> List[Disagreement]:
        base = _try_exact(program)
        if base is None:
            return []
        out: List[Disagreement] = []
        try:
            result = sli(program, factorize=True)
            factors = result.factors
            assert factors is not None
            product = factored_exact(factors)
        except (ValueError, ExactEngineError):
            out.append(
                Disagreement(
                    oracle=self.name,
                    kind="distribution",
                    subject="factored",
                    reference="original",
                    detail=(
                        "factorized pipeline is degenerate/unenumerable "
                        "but the original has a positive normalizer"
                    ),
                )
            )
            return out
        except Exception:
            out.append(
                Disagreement(
                    oracle=self.name,
                    kind="crash",
                    subject="factored",
                    reference="original",
                    detail=traceback.format_exc(limit=6),
                )
            )
            return out
        total = sum(f.size for f in factors.factors)
        if total > result.sliced_size or (
            factors.dropped == 0 and total != result.sliced_size
        ):
            out.append(
                Disagreement(
                    oracle=self.name,
                    kind="invariant",
                    subject="factored",
                    reference="sli",
                    detail=(
                        f"factor bodies do not partition the slice: "
                        f"sizes {[f.size for f in factors.factors]} sum to "
                        f"{total}, slice has {result.sliced_size} "
                        f"statements, {factors.dropped} dropped"
                    ),
                )
            )
        tv = base.distribution.tv_distance(product.distribution)
        if not base.distribution.allclose(
            product.distribution, atol=self.config.atol
        ):
            out.append(
                Disagreement(
                    oracle=self.name,
                    kind="distribution",
                    subject="factored",
                    reference="original",
                    detail=(
                        f"product of {len(factors)} factor posteriors "
                        f"differs from monolithic: {base.distribution!r} "
                        f"vs {product.distribution!r}"
                    ),
                    metric=tv,
                )
            )
        return out


class SlicerArbitrationOracle(Oracle):
    """Arbitrate the two slicing theories against the original.

    Both ``sli(P, slicer="svf")`` and ``sli(P, slicer="ab")`` claim
    Theorem-1-style distribution preservation, via very different
    arguments (d-separation on the single-variable-form dependence
    graph vs weak slice sets on the CFG).  This oracle holds each to
    the claim independently:

    * where the enumerator reaches the original, each slice's exact
      posterior must match with TV (float-)zero — and a slice must
      never be degenerate/unenumerable when the original has a
      positive normalizer;
    * otherwise, likelihood-weighted sample streams from the original
      and from each slice (fixed fingerprint-derived seeds) must pass
      a two-sample chi-square homogeneity test at the campaign's
      Bonferroni-corrected level — applied only to discrete,
      small-support outputs, where the pooled-count test is meaningful.

    The theories legitimately keep *different node sets* (SSA helper
    variables on one side, source-level cones on the other), so
    slice-size divergence is data, not failure: every program where
    both pipelines ran gets a record in :attr:`size_records` and bumps
    one of the ``qa.slicers.{equal_size,svf_tighter,ab_tighter}``
    counters.
    """

    name = "slicers"
    slicer_names: Tuple[str, ...] = ("svf", "ab")
    #: Largest joint support the sampler fallback will test; beyond
    #: this the output is effectively continuous and per-value pooled
    #: counts carry no power.
    max_support: int = 40

    def __init__(self, config: OracleConfig = OracleConfig()) -> None:
        super().__init__(config)
        #: One record per program where *both* pipelines succeeded:
        #: fingerprint, per-theory sizes and kept node-class counts,
        #: and the ab-minus-svf statement delta.
        self.size_records: List[Dict[str, object]] = []

    def check(self, program: Program) -> List[Disagreement]:
        out: List[Disagreement] = []
        results = {}
        for slicer in self.slicer_names:
            try:
                results[slicer] = sli(program, slicer=slicer)
            except Exception:
                out.append(
                    Disagreement(
                        oracle=self.name,
                        kind="crash",
                        subject=f"sli[{slicer}]",
                        reference="original",
                        detail=traceback.format_exc(limit=6),
                    )
                )
        if len(results) == len(self.slicer_names):
            self._record_sizes(program, results)
        base = _try_exact(program)
        for slicer, result in results.items():
            if base is not None:
                out.extend(self._check_exact(slicer, result, base))
            else:
                out.extend(self._check_sampled(slicer, program, result))
        return out

    def _record_sizes(self, program: Program, results) -> None:
        record: Dict[str, object] = {
            "fingerprint": program_fingerprint(program)[:16],
            "original_stmts": results["svf"].original_size,
        }
        for slicer, result in results.items():
            record[slicer] = {
                "transformed_stmts": result.transformed_size,
                "sliced_stmts": result.sliced_size,
                "kept": node_class_counts(result.sliced.body),
            }
        delta = results["ab"].sliced_size - results["svf"].sliced_size
        record["delta"] = delta
        self.size_records.append(record)
        rec = current_recorder()
        if delta == 0:
            rec.counter("qa.slicers.equal_size")
        elif delta < 0:
            rec.counter("qa.slicers.ab_tighter")
        else:
            rec.counter("qa.slicers.svf_tighter")

    def _check_exact(
        self, slicer: str, result, base: ExactResult
    ) -> List[Disagreement]:
        try:
            got = exact_inference(result.sliced)
        except (ValueError, ExactEngineError):
            return [
                Disagreement(
                    oracle=self.name,
                    kind="distribution",
                    subject=f"sli[{slicer}]",
                    reference="original",
                    detail=(
                        "slice is degenerate/unenumerable but the "
                        "original has a positive normalizer"
                    ),
                )
            ]
        except Exception:
            return [
                Disagreement(
                    oracle=self.name,
                    kind="crash",
                    subject=f"sli[{slicer}]",
                    reference="original",
                    detail=traceback.format_exc(limit=6),
                )
            ]
        tv = base.distribution.tv_distance(got.distribution)
        if not base.distribution.allclose(
            got.distribution, atol=self.config.atol
        ):
            return [
                Disagreement(
                    oracle=self.name,
                    kind="distribution",
                    subject=f"sli[{slicer}]",
                    reference="original",
                    detail=(
                        f"exact output distributions differ: "
                        f"{base.distribution!r} vs {got.distribution!r}"
                    ),
                    metric=tv,
                )
            ]
        return []

    def _check_sampled(
        self, slicer: str, program: Program, result
    ) -> List[Disagreement]:
        """Sampler fallback for programs the enumerator cannot reach:
        likelihood-weighted streams from the original and the slice
        must be homogeneous."""
        seed = int(
            program_fingerprint(program, oracle=self.name, slicer=slicer)[
                :12
            ],
            16,
        )
        sides = []
        for offset, (side_name, side) in enumerate(
            [("original", program), (f"sli[{slicer}]", result.sliced)]
        ):
            engine = LikelihoodWeighting(
                n_samples=self.config.n_samples, seed=seed + offset
            )
            try:
                res = engine.infer(side)
                dist = res.distribution()
            except (UnsupportedProgramError, InferenceError):
                return []  # legitimate refusal — a skip, not a bug
            except Exception:
                return [
                    Disagreement(
                        oracle=self.name,
                        kind="crash",
                        subject=side_name,
                        reference="importance",
                        detail=traceback.format_exc(limit=6),
                    )
                ]
            n_eff = _effective_draws(res)
            if n_eff < 50.0:
                return []  # too few effective draws to compare
            sides.append((side_name, dist, n_eff))
        (_, dist_a, n_a), (subject_name, dist_b, n_b) = sides
        if len(set(dist_a.support()) | set(dist_b.support())) > self.max_support:
            return []  # effectively continuous output
        p_value, stat, dof = chi_square_homogeneity(dist_a, n_a, dist_b, n_b)
        if p_value < self.config.corrected_alpha:
            return [
                Disagreement(
                    oracle=self.name,
                    kind="statistical",
                    subject=subject_name,
                    reference="original",
                    detail=(
                        f"two-sample chi-square homogeneity failed: "
                        f"stat={stat:.2f} dof={dof} n_eff="
                        f"({n_a:.0f}, {n_b:.0f}) p={p_value:.3g} < "
                        f"alpha={self.config.corrected_alpha:.3g}; "
                        f"tv={dist_a.tv_distance(dist_b):.4f}"
                    ),
                    metric=p_value,
                )
            ]
        return []


# ---------------------------------------------------------------------------
# Registry and campaign helpers
# ---------------------------------------------------------------------------


ORACLE_TYPES: Dict[str, type] = {
    "backends": BackendEquivalenceOracle,
    "exact": ExactEquivalenceOracle,
    "bayesnet": BayesNetOracle,
    "samplers": SamplerEquivalenceOracle,
    "factorization": FactorizationOracle,
    "slicers": SlicerArbitrationOracle,
}


def default_oracle_names() -> Tuple[str, ...]:
    return (
        "backends",
        "exact",
        "bayesnet",
        "samplers",
        "factorization",
        "slicers",
    )


def make_oracles(
    names: Optional[Sequence[str]] = None,
    config: OracleConfig = OracleConfig(),
) -> List[Oracle]:
    """Instantiate oracles by name (all six by default)."""
    chosen = tuple(names) if names else default_oracle_names()
    oracles = []
    for name in chosen:
        try:
            oracle_type = ORACLE_TYPES[name]
        except KeyError:
            raise ValueError(
                f"unknown oracle {name!r}; known: {', '.join(ORACLE_TYPES)}"
            ) from None
        oracles.append(oracle_type(config))
    return oracles


def run_oracles(
    program: Program, oracles: Sequence[Oracle]
) -> List[Disagreement]:
    """Run every applicable oracle on ``program``."""
    out: List[Disagreement] = []
    for oracle in oracles:
        if oracle.applicable(program):
            out.extend(oracle.check(program))
    return out


def format_report(
    program: Program,
    disagreements: Sequence[Disagreement],
    shrunk: Optional[Program] = None,
    seed: Optional[int] = None,
) -> str:
    """Human-readable disagreement report for the crash corpus."""
    lines = ["oracle disagreement report", "=" * 60]
    if seed is not None:
        lines.append(f"generator seed: {seed}")
    lines.append(f"fingerprint: {program_fingerprint(program)[:16]}")
    lines.append("")
    for d in disagreements:
        lines.append(d.describe())
    lines.append("")
    lines.append("original program:")
    lines.append(pretty(program).rstrip())
    if shrunk is not None:
        lines.append("")
        lines.append("shrunk counterexample:")
        lines.append(pretty(shrunk).rstrip())
    lines.append("")
    return "\n".join(lines)


# Re-exported convenience: a config tuned for quick smoke runs.
def smoke_config(n_comparisons: int = 1) -> OracleConfig:
    """A cheaper configuration for CI smoke campaigns."""
    return replace(
        OracleConfig(),
        n_samples=600,
        seeds=(0, 1),
        n_comparisons=n_comparisons,
    )
