"""The Recorder protocol: spans, metrics, and progress events.

Two implementations share one duck-typed surface:

* :data:`NULL_RECORDER` (a :class:`NullRecorder`) — the process-wide
  default.  Every method is a no-op and :meth:`NullRecorder.span`
  returns one shared null context manager, so instrumentation woven
  through the hot paths costs an attribute lookup and a call — the
  disabled-path overhead budget that
  ``benchmarks/bench_obs_overhead.py`` enforces (<2%).  Call sites
  that would do *extra work to compute attributes* (walking an AST to
  classify statements, say) must guard on :attr:`Recorder.enabled`.
* :class:`TraceRecorder` — buffers hierarchical spans (wall + CPU
  time, free-form attributes), typed metrics (monotonic counters,
  last-value gauges, value-list histograms), and per-engine progress
  events in memory.  Export lives in :mod:`repro.obs.export`.

The ambient recorder is a :mod:`contextvars` variable:
:func:`current_recorder` reads it (the instrumented layers call this
once per stage, never per iteration) and :func:`use_recorder` is the
context manager the CLI / harness / tests install a recorder with.

Cross-process merging (the :class:`repro.runtime.parallel
.ParallelRunner` worker protocol): a worker builds its own
``TraceRecorder``, serializes it with :meth:`TraceRecorder.to_payload`
(plain dicts — picklable under fork, spawn, and forkserver alike), and
the parent folds it in with :meth:`TraceRecorder.merge_child`.  Span
timestamps are kept relative to each recorder's wall-clock epoch, so
merging re-bases the child's spans by the epoch difference and the
merged tree lines up on one timeline.
"""

from __future__ import annotations

import contextvars
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = [
    "Span",
    "NullRecorder",
    "NULL_RECORDER",
    "TraceRecorder",
    "Recorder",
    "current_recorder",
    "use_recorder",
]


# ---------------------------------------------------------------------------
# Spans
# ---------------------------------------------------------------------------


@dataclass
class Span:
    """One timed region.  ``start``/``end`` are wall-clock seconds
    relative to the owning recorder's ``epoch``; ``cpu`` is the CPU
    seconds consumed between enter and exit (process-wide clock, so
    concurrent spans overlap)."""

    name: str
    start: float
    end: float = 0.0
    cpu: float = 0.0
    attrs: Dict[str, Any] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes; chainable, usable on the open span."""
        self.attrs.update(attrs)
        return self

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "cpu": self.cpu,
            "attrs": dict(self.attrs),
            "children": [c.to_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Span":
        return cls(
            name=d["name"],
            start=d["start"],
            end=d["end"],
            cpu=d.get("cpu", 0.0),
            attrs=dict(d.get("attrs", {})),
            children=[cls.from_dict(c) for c in d.get("children", [])],
        )

    def shifted(self, offset: float) -> "Span":
        """A copy with every timestamp moved by ``offset`` seconds."""
        return Span(
            name=self.name,
            start=self.start + offset,
            end=self.end + offset,
            cpu=self.cpu,
            attrs=dict(self.attrs),
            children=[c.shifted(offset) for c in self.children],
        )


class _NullSpan:
    """The shared do-nothing span/context-manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager around one :class:`Span` on a recorder's stack."""

    __slots__ = ("_recorder", "span")

    def __init__(self, recorder: "TraceRecorder", span: Span) -> None:
        self._recorder = recorder
        self.span = span

    def __enter__(self) -> Span:
        rec = self._recorder
        span = self.span
        span.start = rec._now()
        rec._cpu_marks.append(time.process_time())
        rec._stack.append(span)
        return span

    def __exit__(self, *exc: object) -> bool:
        rec = self._recorder
        span = rec._stack.pop()
        span.end = rec._now()
        span.cpu = time.process_time() - rec._cpu_marks.pop()
        if rec._stack:
            rec._stack[-1].children.append(span)
        else:
            rec.spans.append(span)
        return False


# ---------------------------------------------------------------------------
# Recorders
# ---------------------------------------------------------------------------


class NullRecorder:
    """The default recorder: records nothing, costs (almost) nothing."""

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def counter(self, name: str, value: float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def histogram(self, name: str, value: float) -> None:
        pass

    def progress(
        self, source: str, done: int, total: Optional[int], **metrics: float
    ) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NullRecorder()"


NULL_RECORDER = NullRecorder()


class TraceRecorder:
    """In-memory recorder of spans, metrics, and progress events.

    ``on_progress`` — optional callable invoked with every progress
    event dict (the stderr progress line registers here).
    """

    enabled = True

    def __init__(
        self, on_progress: Optional[Callable[[Dict[str, Any]], None]] = None
    ) -> None:
        #: Wall-clock (``time.time``) instant all span times are
        #: relative to — the cross-process alignment anchor.
        self.epoch = time.time()
        self._perf0 = time.perf_counter()
        self.spans: List[Span] = []
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, List[float]] = {}
        self.progress_events: List[Dict[str, Any]] = []
        self.on_progress = on_progress
        self._stack: List[Span] = []
        self._cpu_marks: List[float] = []

    # -- time ----------------------------------------------------------------

    def _now(self) -> float:
        return time.perf_counter() - self._perf0

    # -- spans ---------------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> _ActiveSpan:
        """``with recorder.span("stage", key=...) as sp: ...`` — the
        span closes (and is attached to its parent) on exit."""
        return _ActiveSpan(self, Span(name=name, start=0.0, attrs=attrs))

    # -- metrics ---------------------------------------------------------------

    def counter(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def histogram(self, name: str, value: float) -> None:
        self.histograms.setdefault(name, []).append(value)

    # -- progress --------------------------------------------------------------

    def progress(
        self, source: str, done: int, total: Optional[int], **metrics: float
    ) -> None:
        """One engine progress report (``done`` of ``total`` units).

        The latest value of each metric is mirrored into gauges as
        ``progress.<source>.<metric>`` so a summary needs no replay.
        """
        event: Dict[str, Any] = {
            "t": self._now(),
            "source": source,
            "done": done,
            "total": total,
            "metrics": dict(metrics),
        }
        self.progress_events.append(event)
        self.gauges[f"progress.{source}.done"] = done
        for key, value in metrics.items():
            self.gauges[f"progress.{source}.{key}"] = value
        if self.on_progress is not None:
            self.on_progress(event)

    # -- cross-process merge ---------------------------------------------------

    def to_payload(self) -> Dict[str, Any]:
        """Plain-data snapshot for shipping across a process boundary."""
        return {
            "epoch": self.epoch,
            "spans": [s.to_dict() for s in self.spans],
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: list(v) for k, v in self.histograms.items()},
            "progress": [dict(e) for e in self.progress_events],
        }

    def merge_child(self, payload: Optional[Dict[str, Any]]) -> None:
        """Fold a worker's :meth:`to_payload` into this recorder.

        Child spans are re-based onto this recorder's timeline (epoch
        difference) and attached under the currently open span (the
        parallel fan-out span) or at the root.  Counters sum,
        histograms concatenate, gauges last-write-wins, and progress
        events append with re-based timestamps.
        """
        if payload is None:
            return
        offset = payload["epoch"] - self.epoch
        sink = self._stack[-1].children if self._stack else self.spans
        for d in payload.get("spans", []):
            sink.append(Span.from_dict(d).shifted(offset))
        for name, value in payload.get("counters", {}).items():
            self.counter(name, value)
        for name, value in payload.get("gauges", {}).items():
            self.gauges[name] = value
        for name, values in payload.get("histograms", {}).items():
            self.histograms.setdefault(name, []).extend(values)
        for event in payload.get("progress", []):
            event = dict(event)
            event["t"] = event.get("t", 0.0) + offset
            self.progress_events.append(event)

    # -- queries ---------------------------------------------------------------

    def iter_spans(self) -> Iterator[Span]:
        """Depth-first over every span: finished roots plus the open
        stack (whose attached children are already finished)."""
        stack = list(reversed(self.spans + self._stack))
        while stack:
            span = stack.pop()
            yield span
            stack.extend(reversed(span.children))

    def find_spans(self, name: str) -> List[Span]:
        return [s for s in self.iter_spans() if s.name == name]

    def stage_seconds(self) -> Dict[str, float]:
        """Total wall seconds per span name, summed over occurrences
        (spans still open are skipped)."""
        out: Dict[str, float] = {}
        for span in self.iter_spans():
            if span.end < span.start:  # still open
                continue
            out[span.name] = out.get(span.name, 0.0) + span.duration
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceRecorder(spans={len(self.spans)}, "
            f"counters={len(self.counters)}, "
            f"progress={len(self.progress_events)})"
        )


#: Structural union for annotations; both implementations satisfy it.
Recorder = object


# ---------------------------------------------------------------------------
# The ambient recorder
# ---------------------------------------------------------------------------

_CURRENT: "contextvars.ContextVar[Any]" = contextvars.ContextVar(
    "repro_obs_recorder", default=NULL_RECORDER
)


def current_recorder() -> Any:
    """The ambient recorder (default: :data:`NULL_RECORDER`)."""
    return _CURRENT.get()


@contextmanager
def use_recorder(recorder: Any) -> Iterator[Any]:
    """Install ``recorder`` as the ambient recorder for the block."""
    token = _CURRENT.set(recorder)
    try:
        yield recorder
    finally:
        _CURRENT.reset(token)
