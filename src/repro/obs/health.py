"""Inference-health monitors over the live snapshot stream.

BENCH_pr3 showed why raw samples/sec is not the whole story: sliced
BayesianLinearRegression runs 9.5x faster but its MH acceptance
collapses from 0.928 to 0.206, so much of that speed buys correlated
samples.  The monitors here watch the :class:`~repro.obs.live.Snapshot`
stream *during* a run and turn pathologies into structured
:class:`HealthWarning` records:

* :class:`AcceptanceCollapseMonitor` — windowed MH acceptance rate
  below a calibrated threshold (0.25 separates the BLR collapse from
  every healthy Table-1 run; HIV, the next-lowest, sits at 0.32).
* :class:`WeightDegeneracyMonitor` — likelihood-weighting Kish ESS
  collapsing relative to draws (a few heavy weights dominating).
* :class:`ResampleStormMonitor` — SMC resampling at nearly every
  barrier, the classic weight-degeneracy signature.
* :class:`StallMonitor` — a source that stops reporting progress for
  longer than a deadline while other activity continues.
* :class:`ConvergenceMonitor` — finalize-time split-R-hat and
  autocorrelation-ESS/sec over the merged chains (built on
  :mod:`repro.metrics.online`).

A :class:`HealthTracker` subscribes the whole panel to a
:class:`~repro.obs.live.SnapshotRecorder` and renders a
:class:`HealthReport` (machine-readable via :meth:`HealthReport.to_dict`,
human-readable via :meth:`HealthReport.summary`) that run drivers
attach to ``InferenceResult.health``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from .live import Snapshot

__all__ = [
    "HealthWarning",
    "HealthReport",
    "HealthMonitor",
    "AcceptanceCollapseMonitor",
    "WeightDegeneracyMonitor",
    "ResampleStormMonitor",
    "StallMonitor",
    "ConvergenceMonitor",
    "HealthTracker",
    "default_monitors",
]

#: Engines whose ``accept_rate`` progress metric is an MH acceptance
#: probability.  The rejection sampler also reports ``accept_rate``,
#: but a tiny rejection acceptance is the *expected* cost of the
#: method, not a pathology, so it is excluded.
MH_SOURCES = ("r2-mh", "church-mh", "gibbs")


def _base_source(source: str) -> str:
    """Strip the ``w<index>/`` worker prefix added by registry merges."""
    return source.rsplit("/", 1)[-1]


@dataclass(frozen=True)
class HealthWarning:
    """One structured monitor finding."""

    kind: str
    source: str
    message: str
    severity: str = "warning"
    value: Optional[float] = None
    threshold: Optional[float] = None
    t: float = 0.0
    worker: Optional[int] = None
    data: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "source": self.source,
            "message": self.message,
            "severity": self.severity,
            "value": self.value,
            "threshold": self.threshold,
            "t": self.t,
            "worker": self.worker,
            "data": dict(self.data),
        }


@dataclass
class HealthReport:
    """Everything the monitor panel concluded about one run."""

    warnings: List[HealthWarning] = field(default_factory=list)
    info: Dict[str, Any] = field(default_factory=dict)
    n_snapshots: int = 0

    @property
    def clean(self) -> bool:
        return not self.warnings

    def has(self, kind: str) -> bool:
        return any(w.kind == kind for w in self.warnings)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "clean": self.clean,
            "n_snapshots": self.n_snapshots,
            "warnings": [w.to_dict() for w in self.warnings],
            "info": dict(self.info),
        }

    def summary(self) -> str:
        """Human summary printed at run end."""
        if self.clean:
            lines = [f"health: ok ({self.n_snapshots} snapshots, 0 warnings)"]
        else:
            lines = [
                f"health: {len(self.warnings)} warning(s) "
                f"over {self.n_snapshots} snapshots"
            ]
            for w in self.warnings:
                where = w.source if w.worker is None else f"w{w.worker}/{w.source}"
                lines.append(f"  [{w.severity}] {w.kind} {where}: {w.message}")
        for key in sorted(self.info):
            lines.append(f"  {key} = {self.info[key]}")
        return "\n".join(lines)


class HealthMonitor:
    """Base monitor: observe snapshots in flight, finalize on result."""

    kind = "generic"

    def observe(self, snapshot: Snapshot) -> Iterable[HealthWarning]:
        return ()

    def finalize(
        self, result: Any = None, elapsed: Optional[float] = None
    ) -> Iterable[HealthWarning]:
        return ()

    def info(self) -> Dict[str, Any]:
        return {}


class AcceptanceCollapseMonitor(HealthMonitor):
    """Flag MH sources whose acceptance rate collapses.

    Fires once per (worker, source) when, after ``min_proposals``
    proposals, either the cumulative acceptance or the rate over the
    window since the previous snapshot (when the window holds at least
    ``min_window`` proposals) drops below ``threshold``.
    """

    kind = "acceptance-collapse"

    def __init__(
        self,
        threshold: float = 0.25,
        min_proposals: int = 200,
        min_window: int = 100,
        sources: Tuple[str, ...] = MH_SOURCES,
    ) -> None:
        self.threshold = threshold
        self.min_proposals = min_proposals
        self.min_window = min_window
        self.sources = sources
        self._state: Dict[Tuple[Optional[int], str], Dict[str, float]] = {}

    def observe(self, snapshot: Snapshot) -> Iterable[HealthWarning]:
        warnings: List[HealthWarning] = []
        for source, st in snapshot.progress.items():
            metrics = st.get("metrics", {})
            rate = metrics.get("accept_rate")
            if rate is None or _base_source(source) not in self.sources:
                continue
            done = int(st.get("done", 0))
            accepted = float(rate) * done
            key = (snapshot.worker, source)
            prev = self._state.setdefault(
                key, {"done": 0.0, "accepted": 0.0, "warned": 0.0}
            )
            window_done = done - prev["done"]
            window_accepted = accepted - prev["accepted"]
            prev["done"], prev["accepted"] = float(done), accepted
            if prev["warned"] or done < self.min_proposals:
                continue
            collapsed = None
            if float(rate) < self.threshold:
                collapsed = ("cumulative", float(rate))
            elif window_done >= self.min_window:
                windowed = window_accepted / window_done
                if windowed < self.threshold:
                    collapsed = ("windowed", windowed)
            if collapsed is None:
                continue
            prev["warned"] = 1.0
            mode, value = collapsed
            warnings.append(
                HealthWarning(
                    kind=self.kind,
                    source=source,
                    severity="critical",
                    message=(
                        f"{mode} acceptance {value:.3f} < "
                        f"{self.threshold} after {done} proposals"
                    ),
                    value=value,
                    threshold=self.threshold,
                    t=snapshot.t,
                    worker=snapshot.worker,
                    data={"done": done, "mode": mode},
                )
            )
        return warnings


class WeightDegeneracyMonitor(HealthMonitor):
    """Flag importance sampling whose Kish ESS collapses vs draw count."""

    kind = "weight-degeneracy"

    def __init__(self, min_ratio: float = 0.05, min_draws: int = 200) -> None:
        self.min_ratio = min_ratio
        self.min_draws = min_draws
        self._warned: set = set()

    def observe(self, snapshot: Snapshot) -> Iterable[HealthWarning]:
        warnings: List[HealthWarning] = []
        for source, st in snapshot.progress.items():
            ess = st.get("metrics", {}).get("ess")
            if ess is None:
                continue
            done = int(st.get("done", 0))
            key = (snapshot.worker, source)
            if key in self._warned or done < self.min_draws:
                continue
            ratio = float(ess) / done if done else 1.0
            if ratio >= self.min_ratio:
                continue
            self._warned.add(key)
            warnings.append(
                HealthWarning(
                    kind=self.kind,
                    source=source,
                    message=(
                        f"Kish ESS {float(ess):.1f} of {done} draws "
                        f"(ratio {ratio:.3f} < {self.min_ratio})"
                    ),
                    value=ratio,
                    threshold=self.min_ratio,
                    t=snapshot.t,
                    worker=snapshot.worker,
                    data={"ess": float(ess), "done": done},
                )
            )
        return warnings


class ResampleStormMonitor(HealthMonitor):
    """Flag SMC runs that resample at (nearly) every barrier."""

    kind = "resample-storm"

    def __init__(self, max_rate: float = 0.9, min_barriers: int = 8) -> None:
        self.max_rate = max_rate
        self.min_barriers = min_barriers
        self._warned: set = set()

    def observe(self, snapshot: Snapshot) -> Iterable[HealthWarning]:
        warnings: List[HealthWarning] = []
        for source, st in snapshot.progress.items():
            metrics = st.get("metrics", {})
            barriers = metrics.get("barriers")
            resamples = metrics.get("resamples")
            if barriers is None or resamples is None:
                continue
            key = (snapshot.worker, source)
            if key in self._warned or barriers < self.min_barriers:
                continue
            rate = float(resamples) / float(barriers)
            if rate <= self.max_rate:
                continue
            self._warned.add(key)
            warnings.append(
                HealthWarning(
                    kind=self.kind,
                    source=source,
                    message=(
                        f"resampled at {int(resamples)}/{int(barriers)} "
                        f"barriers (rate {rate:.2f} > {self.max_rate})"
                    ),
                    value=rate,
                    threshold=self.max_rate,
                    t=snapshot.t,
                    worker=snapshot.worker,
                    data={
                        "barriers": int(barriers),
                        "resamples": int(resamples),
                    },
                )
            )
        return warnings


class StallMonitor(HealthMonitor):
    """Flag sources that stop making progress while snapshots keep
    arriving.

    Publication is event-driven, so a *totally* dead process emits no
    snapshots and this monitor stays silent — but in the common cases
    (one stuck worker among many, one engine wedged while the pipeline
    ticks) other activity keeps the stream alive and the stalled
    source's unchanged ``done`` is visible against it.
    """

    kind = "stall"

    def __init__(self, deadline: float = 5.0) -> None:
        self.deadline = deadline
        self._last_change: Dict[Tuple[Optional[int], str], Dict[str, float]] = {}
        self._warned: set = set()

    def observe(self, snapshot: Snapshot) -> Iterable[HealthWarning]:
        warnings: List[HealthWarning] = []
        for source, st in snapshot.progress.items():
            done = int(st.get("done", 0))
            total = st.get("total")
            key = (snapshot.worker, source)
            state = self._last_change.setdefault(
                key, {"done": -1.0, "t": snapshot.t}
            )
            if done != state["done"]:
                state["done"], state["t"] = float(done), snapshot.t
                continue
            if total is not None and done >= total:
                continue  # finished, not stalled
            if key in self._warned:
                continue
            idle = snapshot.t - state["t"]
            if idle < self.deadline:
                continue
            self._warned.add(key)
            warnings.append(
                HealthWarning(
                    kind=self.kind,
                    source=source,
                    message=(
                        f"no progress for {idle:.1f}s "
                        f"(stuck at {done}"
                        + (f"/{int(total)}" if total is not None else "")
                        + f", deadline {self.deadline}s)"
                    ),
                    value=idle,
                    threshold=self.deadline,
                    t=snapshot.t,
                    worker=snapshot.worker,
                    data={"done": done, "total": total},
                )
            )
        return warnings


class ConvergenceMonitor(HealthMonitor):
    """Finalize-time split-R-hat and ESS/sec over the merged result."""

    kind = "non-convergence"

    def __init__(
        self, r_hat_threshold: float = 1.1, min_chain_len: int = 4
    ) -> None:
        self.r_hat_threshold = r_hat_threshold
        self.min_chain_len = min_chain_len
        self._info: Dict[str, Any] = {}

    def finalize(
        self, result: Any = None, elapsed: Optional[float] = None
    ) -> Iterable[HealthWarning]:
        if result is None:
            return ()
        from ..metrics.online import (
            OnlineEss,
            OnlineSplitRHat,
            kish_ess,
        )

        warnings: List[HealthWarning] = []
        samples = _as_floats(getattr(result, "samples", None))
        elapsed = elapsed if elapsed is not None else getattr(
            result, "elapsed_seconds", None
        )
        if samples:
            weights = getattr(result, "weights", None)
            if weights is not None:
                ess = kish_ess(weights)
                self._info["ess_kind"] = "kish"
            else:
                online = OnlineEss()
                for x in samples:
                    online.push(x)
                ess = online.ess()
                self._info["ess_kind"] = "autocorrelation"
            self._info["ess"] = round(float(ess), 2)
            if elapsed:
                self._info["ess_per_sec"] = round(float(ess) / elapsed, 2)
        chains = getattr(result, "chains", None)
        if chains and len(chains) >= 2:
            floats = [_as_floats(chain) for chain in chains]
            if all(
                chain is not None and len(chain) >= self.min_chain_len
                for chain in floats
            ):
                rhat = OnlineSplitRHat(len(floats))
                for index, chain in enumerate(floats):
                    for x in chain:
                        rhat.push(index, x)
                value = rhat.r_hat()
                self._info["split_r_hat"] = round(value, 4)
                if value == value and value > self.r_hat_threshold:
                    warnings.append(
                        HealthWarning(
                            kind=self.kind,
                            source="chains",
                            message=(
                                f"split R-hat {value:.3f} > "
                                f"{self.r_hat_threshold} over "
                                f"{len(floats)} chains"
                            ),
                            value=value,
                            threshold=self.r_hat_threshold,
                            data={"n_chains": len(floats)},
                        )
                    )
        return warnings

    def info(self) -> Dict[str, Any]:
        return dict(self._info)


def _as_floats(values: Any) -> Optional[List[float]]:
    if values is None:
        return None
    out: List[float] = []
    for v in values:
        if isinstance(v, bool):
            out.append(1.0 if v else 0.0)
        elif isinstance(v, (int, float)):
            out.append(float(v))
        else:
            return None
    return out


def default_monitors() -> List[HealthMonitor]:
    return [
        AcceptanceCollapseMonitor(),
        WeightDegeneracyMonitor(),
        ResampleStormMonitor(),
        StallMonitor(),
        ConvergenceMonitor(),
    ]


class HealthTracker:
    """The monitor panel: subscribe to a SnapshotRecorder, then
    :meth:`finalize` once the run's ``InferenceResult`` exists."""

    def __init__(self, monitors: Optional[Iterable[HealthMonitor]] = None) -> None:
        self.monitors: List[HealthMonitor] = (
            list(monitors) if monitors is not None else default_monitors()
        )
        self.warnings: List[HealthWarning] = []
        self.n_snapshots = 0
        self._on_warning: List[Any] = []

    def on_warning(self, fn: Any) -> None:
        """Register a callback fired as each warning is raised (the
        watch dashboard uses this to surface warnings in flight)."""
        self._on_warning.append(fn)

    def __call__(self, snapshot: Snapshot) -> None:
        self.n_snapshots += 1
        for monitor in self.monitors:
            for warning in monitor.observe(snapshot):
                self.warnings.append(warning)
                for fn in self._on_warning:
                    fn(warning)

    def finalize(
        self, result: Any = None, elapsed: Optional[float] = None
    ) -> HealthReport:
        """Run the finalize-time monitors and render the report.

        Safe to call more than once; in-flight warnings accumulate
        across calls only once (monitors dedupe), finalize warnings are
        recomputed from the supplied result.
        """
        warnings = list(self.warnings)
        info: Dict[str, Any] = {}
        for monitor in self.monitors:
            for warning in monitor.finalize(result=result, elapsed=elapsed):
                warnings.append(warning)
                for fn in self._on_warning:
                    fn(warning)
            info.update(monitor.info())
        return HealthReport(
            warnings=warnings, info=info, n_snapshots=self.n_snapshots
        )
