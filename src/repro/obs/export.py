"""Exporters for :class:`repro.obs.TraceRecorder` buffers.

Two wire formats plus a human summary:

* :func:`write_jsonl` — one JSON object per line (``meta``, ``span``,
  ``counter``, ``gauge``, ``histogram``, ``progress`` records; spans
  are flattened depth-first with ``id``/``parent`` links).  The line
  schema is checked in at ``src/repro/obs/trace_schema.json`` and
  enforced by :mod:`repro.obs.validate` (CI's ``obs-smoke`` job).
* :func:`write_chrome_trace` — the Chrome trace-event JSON array
  (``chrome://tracing`` / https://ui.perfetto.dev): complete events
  (``ph: "X"``) with microsecond timestamps; spans merged from a
  parallel worker render on their own ``tid`` so per-worker chains
  show as separate tracks.
* :func:`format_metrics_summary` — aligned plain text (stage timings,
  counters, gauges, histogram summaries) for ``--metrics-summary``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, Iterator, List, Optional, Union

from .recorder import Span, TraceRecorder

__all__ = [
    "TRACE_FORMATS",
    "iter_jsonl_records",
    "write_jsonl",
    "chrome_trace_events",
    "write_chrome_trace",
    "write_trace",
    "format_metrics_summary",
]

TRACE_FORMATS = ("jsonl", "chrome")


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------


def iter_jsonl_records(recorder: TraceRecorder) -> Iterator[Dict[str, Any]]:
    """The JSONL records, in emission order."""
    yield {
        "type": "meta",
        "version": 1,
        "epoch": recorder.epoch,
        "n_spans": sum(1 for _ in recorder.iter_spans()),
    }
    next_id = 0

    def walk(span: Span, parent: Optional[int]) -> Iterator[Dict[str, Any]]:
        nonlocal next_id
        sid = next_id
        next_id += 1
        yield {
            "type": "span",
            "id": sid,
            "parent": parent,
            "name": span.name,
            "start_s": span.start,
            "dur_s": span.duration,
            "cpu_s": span.cpu,
            "attrs": _jsonable(span.attrs),
        }
        for child in span.children:
            yield from walk(child, sid)

    for root in recorder.spans:
        yield from walk(root, None)
    for name in sorted(recorder.counters):
        yield {"type": "counter", "name": name, "value": recorder.counters[name]}
    for name in sorted(recorder.gauges):
        yield {"type": "gauge", "name": name, "value": _jsonable(recorder.gauges[name])}
    for name in sorted(recorder.histograms):
        values = recorder.histograms[name]
        yield {
            "type": "histogram",
            "name": name,
            "count": len(values),
            "sum": float(sum(values)),
            "min": float(min(values)),
            "max": float(max(values)),
        }
    for event in recorder.progress_events:
        yield {
            "type": "progress",
            "t": event["t"],
            "source": event["source"],
            "done": event["done"],
            "total": event["total"],
            "metrics": _jsonable(event["metrics"]),
        }


def write_jsonl(recorder: TraceRecorder, dest: Union[str, IO[str]]) -> int:
    """Write the JSONL export; returns the number of records."""
    n = 0
    if isinstance(dest, str):
        with open(dest, "w") as f:
            return write_jsonl(recorder, f)
    for record in iter_jsonl_records(recorder):
        dest.write(json.dumps(record, allow_nan=False, default=_fallback))
        dest.write("\n")
        n += 1
    return n


# ---------------------------------------------------------------------------
# Chrome trace events
# ---------------------------------------------------------------------------


def chrome_trace_events(recorder: TraceRecorder) -> List[Dict[str, Any]]:
    """Trace-event dicts (the JSON-array flavor Perfetto ingests)."""
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": "repro"},
        }
    ]
    tids = {0: "main"}

    def walk(span: Span, tid: int) -> None:
        # A span merged from a parallel worker opens its own track.
        worker = span.attrs.get("worker")
        if worker is not None:
            tid = int(worker) + 1
            tids.setdefault(tid, f"worker {worker}")
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "pid": 0,
                "tid": tid,
                "args": _jsonable(span.attrs),
            }
        )
        for child in span.children:
            walk(child, tid)

    for root in recorder.spans:
        walk(root, 0)
    for tid, label in tids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": label},
            }
        )
    for event in recorder.progress_events:
        events.append(
            {
                "name": f"progress/{event['source']}",
                "ph": "i",
                "s": "g",
                "ts": event["t"] * 1e6,
                "pid": 0,
                "tid": 0,
                "args": _jsonable(
                    {"done": event["done"], "total": event["total"], **event["metrics"]}
                ),
            }
        )
    return events


def write_chrome_trace(recorder: TraceRecorder, dest: Union[str, IO[str]]) -> int:
    """Write the Chrome trace JSON array; returns the event count."""
    events = chrome_trace_events(recorder)
    if isinstance(dest, str):
        with open(dest, "w") as f:
            json.dump(events, f, default=_fallback)
    else:
        json.dump(events, dest, default=_fallback)
    return len(events)


def write_trace(
    recorder: TraceRecorder, path: str, trace_format: str = "jsonl"
) -> int:
    """Dispatch on ``trace_format`` (one of :data:`TRACE_FORMATS`)."""
    if trace_format == "jsonl":
        return write_jsonl(recorder, path)
    if trace_format == "chrome":
        return write_chrome_trace(recorder, path)
    raise ValueError(
        f"unknown trace format {trace_format!r}; expected one of {TRACE_FORMATS}"
    )


# ---------------------------------------------------------------------------
# Text summary
# ---------------------------------------------------------------------------


def format_metrics_summary(recorder: TraceRecorder) -> str:
    """Stage timings + metrics as aligned text (``--metrics-summary``)."""
    lines: List[str] = []
    stages = recorder.stage_seconds()
    if stages:
        lines.append("== stage timings ==")
        width = max(len(n) for n in stages)
        for name, secs in sorted(stages.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {name:<{width}}  {secs * 1000:10.2f} ms")
    if recorder.counters:
        lines.append("== counters ==")
        width = max(len(n) for n in recorder.counters)
        for name in sorted(recorder.counters):
            lines.append(f"  {name:<{width}}  {recorder.counters[name]:g}")
    if recorder.gauges:
        lines.append("== gauges ==")
        width = max(len(n) for n in recorder.gauges)
        for name in sorted(recorder.gauges):
            lines.append(f"  {name:<{width}}  {recorder.gauges[name]:g}")
    if recorder.histograms:
        lines.append("== histograms ==")
        width = max(len(n) for n in recorder.histograms)
        for name in sorted(recorder.histograms):
            vs = recorder.histograms[name]
            lines.append(
                f"  {name:<{width}}  n={len(vs)} sum={sum(vs):g} "
                f"min={min(vs):g} max={max(vs):g}"
            )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# JSON hygiene
# ---------------------------------------------------------------------------


def _jsonable(value: Any) -> Any:
    """Coerce attribute values to JSON-encodable types (repr fallback)."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, float):
        # NaN/Inf are not valid JSON; stringify them.
        if value != value or value in (float("inf"), float("-inf")):
            return repr(value)
        return value
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    return repr(value)


def _fallback(value: Any) -> str:
    return repr(value)
