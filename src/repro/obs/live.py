"""Live telemetry: time-series metrics, periodic snapshots, wire formats.

:mod:`repro.obs.recorder` (PR 3) is post-hoc: a
:class:`~repro.obs.recorder.TraceRecorder` buffers everything and the
exporters run after the inference finishes.  This module adds the
in-flight layer on top of the same Recorder protocol:

* :class:`TimeSeries` — a fixed-capacity ring buffer of ``(t, value)``
  points; old points fall off the back, so a long run's memory is
  bounded no matter how chatty its engines are.
* :class:`MetricsRegistry` — counters, gauges, bounded histogram
  summaries, and the latest per-source progress state, each mirrored
  into a :class:`TimeSeries` on a wall-clock sampling cadence.
* :class:`Snapshot` — an immutable, plain-data picture of the registry
  at one instant.  Snapshots are what every downstream consumer sees:
  the ``--watch`` dashboard, the NDJSON stream, the Prometheus
  exposition, and the :mod:`repro.obs.health` monitors.
* :class:`SnapshotRecorder` — a Recorder that *composes* with an inner
  recorder (usually a ``TraceRecorder``): every protocol call is
  forwarded verbatim — the inner buffers, and therefore the PR 3 JSONL
  export, are byte-identical with or without the live layer — and
  additionally folded into the registry.  On a configurable cadence it
  publishes a :class:`Snapshot` to its subscribers.

Cross-process: a :class:`repro.runtime.parallel.ParallelRunner` worker
runs under its own ``SnapshotRecorder``.  Its final registry state
ships home inside the PR 3 picklable trace payload (one extra ``live``
key that :meth:`TraceRecorder.merge_child` ignores), and — when the
parent has live subscribers — its periodic snapshots stream back over
a manager queue during the run, giving per-worker rows on the watch
dashboard while the pool is still busy.

No threads anywhere: publication is opportunistic (checked whenever an
instrumented event arrives), which keeps the layer deterministic under
test (inject ``clock=``/``cadence=0``) and free of teardown hazards.
"""

from __future__ import annotations

import json
import sys
import time
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    IO,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from .recorder import TraceRecorder

__all__ = [
    "TimeSeries",
    "HistogramSummary",
    "MetricsRegistry",
    "Snapshot",
    "SnapshotRecorder",
    "SnapshotSink",
    "SnapshotStreamWriter",
    "snapshot_to_prometheus",
]


# ---------------------------------------------------------------------------
# Ring-buffer time series
# ---------------------------------------------------------------------------


class TimeSeries:
    """A bounded series of ``(t, value)`` points (oldest dropped first)."""

    __slots__ = ("_points",)

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._points: "deque[Tuple[float, float]]" = deque(maxlen=capacity)

    @property
    def capacity(self) -> int:
        return self._points.maxlen or 0

    def __len__(self) -> int:
        return len(self._points)

    def append(self, t: float, value: float) -> None:
        self._points.append((t, value))

    def points(self) -> List[Tuple[float, float]]:
        return list(self._points)

    def tail(self, n: int) -> List[Tuple[float, float]]:
        """The most recent ``n`` points, oldest first."""
        if n <= 0:
            return []
        points = self._points
        if len(points) <= n:
            return list(points)
        return list(points)[-n:]

    def window(self, since_t: float) -> List[Tuple[float, float]]:
        """Points with ``t >= since_t``, oldest first."""
        return [p for p in self._points if p[0] >= since_t]

    def last(self) -> Optional[Tuple[float, float]]:
        return self._points[-1] if self._points else None


@dataclass
class HistogramSummary:
    """Bounded stand-in for a full histogram value list."""

    count: int = 0
    sum: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def merge(self, other: Mapping[str, float]) -> None:
        count = int(other.get("count", 0))
        if count <= 0:
            return
        self.count += count
        self.sum += float(other.get("sum", 0.0))
        self.min = min(self.min, float(other.get("min", self.min)))
        self.max = max(self.max, float(other.get("max", self.max)))

    def to_dict(self) -> Dict[str, float]:
        if self.count == 0:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0}
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }


# ---------------------------------------------------------------------------
# The registry
# ---------------------------------------------------------------------------


class MetricsRegistry:
    """Current metric values plus their sampled history.

    The registry is the live layer's mutable core: recorder events
    update the current values cheaply, and :meth:`sample` (called by
    the owning :class:`SnapshotRecorder` once per publication) appends
    one point per counter/gauge to the ring-buffered series.
    """

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = capacity
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, HistogramSummary] = {}
        #: Latest progress state per source: ``done``, ``total``,
        #: ``t`` (seconds since the owning recorder's start), ``events``
        #: (how many reports arrived), and the latest ``metrics``.
        self.progress: Dict[str, Dict[str, Any]] = {}
        self.series: Dict[str, TimeSeries] = {}

    # -- updates ---------------------------------------------------------------

    def bump_counter(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        summary = self.histograms.get(name)
        if summary is None:
            summary = self.histograms[name] = HistogramSummary()
        summary.observe(value)

    def note_progress(
        self,
        source: str,
        done: int,
        total: Optional[int],
        metrics: Mapping[str, float],
        t: float,
    ) -> None:
        state = self.progress.get(source)
        if state is None:
            state = self.progress[source] = {
                "done": 0,
                "total": total,
                "t": t,
                "first_t": t,
                "events": 0,
                "metrics": {},
            }
        state["done"] = done
        state["total"] = total
        state["t"] = t
        state["events"] += 1
        state["metrics"] = dict(metrics)

    def sample(self, t: float) -> None:
        """Append the current counter/gauge values to their series."""
        for name, value in self.counters.items():
            self._series(name).append(t, value)
        for name, value in self.gauges.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                self._series(name).append(t, float(value))

    def _series(self, name: str) -> TimeSeries:
        series = self.series.get(name)
        if series is None:
            series = self.series[name] = TimeSeries(self.capacity)
        return series

    # -- cross-process ---------------------------------------------------------

    def to_payload(self) -> Dict[str, Any]:
        """Plain-data state for shipping across a process boundary."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: summary.to_dict()
                for name, summary in self.histograms.items()
            },
            "progress": {
                source: dict(state, metrics=dict(state["metrics"]))
                for source, state in self.progress.items()
            },
            "series": {
                name: series.points() for name, series in self.series.items()
            },
        }

    def merge(
        self,
        payload: Optional[Mapping[str, Any]],
        offset: float = 0.0,
        worker: Optional[int] = None,
    ) -> None:
        """Fold a worker registry payload into this one.

        Counters sum and histogram summaries combine under their own
        names (both are additive across workers).  Gauges, progress
        sources, and series are *per-worker* state, so they merge under
        a ``w<index>/`` prefix — last-write-wins across workers would
        silently drop all but one worker's view.  Timestamps are
        re-based by ``offset`` onto this registry's timeline.
        """
        if not payload:
            return
        prefix = "" if worker is None else f"w{worker}/"
        for name, value in payload.get("counters", {}).items():
            self.bump_counter(name, value)
        for name, other in payload.get("histograms", {}).items():
            summary = self.histograms.get(name)
            if summary is None:
                summary = self.histograms[name] = HistogramSummary()
            summary.merge(other)
        for name, value in payload.get("gauges", {}).items():
            self.gauges[prefix + name] = value
        for source, state in payload.get("progress", {}).items():
            merged = dict(state, metrics=dict(state.get("metrics", {})))
            for key in ("t", "first_t"):
                if key in merged:
                    merged[key] = merged[key] + offset
            self.progress[prefix + source] = merged
        for name, points in payload.get("series", {}).items():
            series = self._series(prefix + name)
            for t, value in points:
                series.append(t + offset, value)


# ---------------------------------------------------------------------------
# Snapshots
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Snapshot:
    """An immutable picture of a registry at one instant.

    All mappings are fresh copies taken at publication; treat them as
    read-only.  ``t`` is seconds since the producing recorder started;
    ``epoch`` is that recorder's wall-clock anchor (``time.time()``),
    so ``epoch + t`` is an absolute timestamp comparable across
    processes.  ``worker`` is ``None`` on the parent and the worker
    index inside a :class:`~repro.runtime.parallel.ParallelRunner`
    shard.
    """

    seq: int
    t: float
    epoch: float
    worker: Optional[int]
    counters: Mapping[str, float] = field(default_factory=dict)
    gauges: Mapping[str, Any] = field(default_factory=dict)
    histograms: Mapping[str, Mapping[str, float]] = field(default_factory=dict)
    progress: Mapping[str, Mapping[str, Any]] = field(default_factory=dict)
    series: Mapping[str, Tuple[Tuple[float, float], ...]] = field(
        default_factory=dict
    )

    def to_dict(self) -> Dict[str, Any]:
        """The NDJSON wire form (``obs/snapshot_schema.json``)."""
        return {
            "type": "snapshot",
            "seq": self.seq,
            "t": self.t,
            "epoch": self.epoch,
            "worker": self.worker,
            "counters": dict(self.counters),
            "gauges": _json_clean(dict(self.gauges)),
            "histograms": {k: dict(v) for k, v in self.histograms.items()},
            "progress": _json_clean(
                {k: dict(v) for k, v in self.progress.items()}
            ),
            "series": {
                name: [[t, _json_clean(v)] for t, v in points]
                for name, points in self.series.items()
            },
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "Snapshot":
        return cls(
            seq=int(d["seq"]),
            t=float(d["t"]),
            epoch=float(d["epoch"]),
            worker=d.get("worker"),
            counters=dict(d.get("counters", {})),
            gauges=dict(d.get("gauges", {})),
            histograms={
                k: dict(v) for k, v in d.get("histograms", {}).items()
            },
            progress={k: dict(v) for k, v in d.get("progress", {}).items()},
            series={
                name: tuple((float(t), float(v)) for t, v in points)
                for name, points in d.get("series", {}).items()
            },
        )


def _json_clean(value: Any) -> Any:
    """NaN/Inf-free, JSON-encodable copy (mirrors export._jsonable)."""
    if isinstance(value, dict):
        return {str(k): _json_clean(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_clean(v) for v in value]
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            return repr(value)
        return value
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    return repr(value)


# ---------------------------------------------------------------------------
# The snapshot recorder
# ---------------------------------------------------------------------------


class SnapshotRecorder:
    """A Recorder that publishes periodic snapshots while delegating
    every event, untouched, to an inner recorder.

    ``cadence`` — minimum seconds between published snapshots (``0``
    publishes on every recorded event: the deterministic test mode).
    ``clock`` — monotonic time source, injectable for tests.
    ``health`` — a snapshot consumer (usually a
    :class:`repro.obs.health.HealthTracker`) auto-subscribed and
    exposed so run drivers can finalize a
    :class:`~repro.obs.health.HealthReport`; pass ``None`` to disable.
    """

    enabled = True

    def __init__(
        self,
        inner: Optional[Any] = None,
        cadence: float = 0.25,
        capacity: int = 256,
        tail: int = 32,
        worker: Optional[int] = None,
        subscribers: Iterable[Callable[[Snapshot], None]] = (),
        health: Any = "auto",
        clock: Callable[[], float] = time.monotonic,
        max_kept: int = 1024,
    ) -> None:
        if cadence < 0:
            raise ValueError("cadence must be >= 0")
        self.inner = TraceRecorder() if inner is None else inner
        self.registry = MetricsRegistry(capacity)
        self.cadence = cadence
        self.tail = tail
        self.worker = worker
        self.epoch = getattr(self.inner, "epoch", None) or time.time()
        self._clock = clock
        self._start = clock()
        self._last_pub: Optional[float] = None
        self._seq = 0
        #: The most recent snapshots (bounded) — post-hoc consumers
        #: (tests, the health bench) read these; live consumers
        #: subscribe instead.
        self.snapshots: "deque[Snapshot]" = deque(maxlen=max_kept)
        self._subscribers: List[Callable[[Snapshot], None]] = list(subscribers)
        if health == "auto":
            from .health import HealthTracker

            health = HealthTracker()
        self.health = health
        if health is not None:
            self._subscribers.append(health)
        #: Latest in-flight snapshot per worker index (fed by
        #: :meth:`ingest_worker_snapshot` during a parallel run).
        self.worker_snapshots: Dict[int, Snapshot] = {}

    # -- Recorder protocol (pure delegation + registry mirror) -----------------

    def span(self, name: str, **attrs: Any):
        return self.inner.span(name, **attrs)

    def counter(self, name: str, value: float = 1) -> None:
        self.inner.counter(name, value)
        self.registry.bump_counter(name, value)
        self.maybe_publish()

    def gauge(self, name: str, value: float) -> None:
        self.inner.gauge(name, value)
        self.registry.set_gauge(name, value)
        self.maybe_publish()

    def histogram(self, name: str, value: float) -> None:
        self.inner.histogram(name, value)
        self.registry.observe(name, value)
        self.maybe_publish()

    def progress(
        self, source: str, done: int, total: Optional[int], **metrics: float
    ) -> None:
        self.inner.progress(source, done, total, **metrics)
        t = self._now()
        self.registry.note_progress(source, done, total, metrics, t)
        for key, value in metrics.items():
            self.registry.set_gauge(f"progress.{source}.{key}", value)
        self.registry.set_gauge(f"progress.{source}.done", done)
        self.maybe_publish()

    # -- time ------------------------------------------------------------------

    def _now(self) -> float:
        return self._clock() - self._start

    # -- publication -----------------------------------------------------------

    def subscribe(self, fn: Callable[[Snapshot], None]) -> None:
        self._subscribers.append(fn)

    @property
    def n_published(self) -> int:
        return self._seq

    def maybe_publish(self) -> Optional[Snapshot]:
        """Publish if at least ``cadence`` seconds have passed since
        the previous publication (always publishes the first time)."""
        now = self._now()
        if self._last_pub is not None and now - self._last_pub < self.cadence:
            return None
        return self.publish()

    def publish(self) -> Snapshot:
        """Sample the registry and emit a snapshot unconditionally."""
        t = self._now()
        self._last_pub = t
        reg = self.registry
        reg.sample(t)
        snapshot = Snapshot(
            seq=self._seq,
            t=t,
            epoch=self.epoch,
            worker=self.worker,
            counters=dict(reg.counters),
            gauges=dict(reg.gauges),
            histograms={
                name: summary.to_dict()
                for name, summary in reg.histograms.items()
            },
            progress={
                source: dict(state, metrics=dict(state["metrics"]))
                for source, state in reg.progress.items()
            },
            series={
                name: tuple(series.tail(self.tail))
                for name, series in reg.series.items()
            },
        )
        self._seq += 1
        self.snapshots.append(snapshot)
        for fn in self._subscribers:
            fn(snapshot)
        return snapshot

    # -- cross-process protocol ------------------------------------------------

    def worker_spec(self) -> Dict[str, Any]:
        """Constructor kwargs for a worker-side clone of this recorder
        (picklable plain data — the :mod:`repro.runtime` fan-out ships
        it inside the task payload)."""
        return {
            "cadence": self.cadence,
            "capacity": self.registry.capacity,
            "tail": self.tail,
        }

    @property
    def wants_live(self) -> bool:
        """Whether in-flight worker snapshots have anywhere to go.

        The health tracker alone does not justify a manager queue: it
        sees everything at merge time anyway.  A watch dashboard or an
        NDJSON stream does.
        """
        return any(
            fn is not self.health for fn in self._subscribers
        )

    def ingest_worker_snapshot(self, payload: Mapping[str, Any]) -> None:
        """Deliver one in-flight worker snapshot to local subscribers.

        ``payload`` is :meth:`Snapshot.to_dict` output shipped over the
        parallel runner's queue.  The snapshot is *not* merged into
        this registry (the authoritative merge happens once, from the
        worker's final payload, in :meth:`merge_child`) — it only feeds
        the live consumers.
        """
        snapshot = Snapshot.from_dict(payload)
        if snapshot.worker is not None:
            self.worker_snapshots[snapshot.worker] = snapshot
        for fn in self._subscribers:
            fn(snapshot)

    def to_payload(self) -> Dict[str, Any]:
        """The inner trace payload plus this recorder's registry state
        (under the ``live`` key, which plain
        :meth:`TraceRecorder.merge_child` ignores)."""
        payload = self.inner.to_payload()
        payload["live"] = self.registry.to_payload()
        payload["worker"] = self.worker
        return payload

    def merge_child(self, payload: Optional[Mapping[str, Any]]) -> None:
        """Fold a worker payload into the inner recorder and, when the
        worker ran live telemetry, into this registry."""
        if payload is None:
            return
        self.inner.merge_child(payload)
        live = payload.get("live")
        if live is not None:
            offset = payload.get("epoch", self.epoch) - self.epoch
            self.registry.merge(live, offset=offset, worker=payload.get("worker"))

    # -- introspection ---------------------------------------------------------

    def __getattr__(self, name: str) -> Any:
        # Post-hoc queries (stage_seconds, find_spans, counters, ...)
        # fall through to the inner recorder, so existing report code
        # accepts a SnapshotRecorder wherever it took a TraceRecorder.
        return getattr(self.inner, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SnapshotRecorder(cadence={self.cadence}, "
            f"published={self._seq}, inner={self.inner!r})"
        )


# ---------------------------------------------------------------------------
# Sinks
# ---------------------------------------------------------------------------


class SnapshotSink:
    """The consumer contract every snapshot sink implements.

    A *sink* is anything a :class:`SnapshotRecorder` publishes to that
    has a lifetime: the ``--watch`` dashboard, the NDJSON stream
    writer, and ``repro.serve``'s per-job SSE bridge all subclass
    this.  The contract exists so every sink shares one delivery
    discipline instead of each reinventing (and mis-handling) the
    finalize edge:

    * ``__call__`` — the subscriber entry point.  It records the
      snapshot (``last_snapshot``, ``n_received``) *before* handing it
      to :meth:`on_snapshot`, so a snapshot published during engine
      finalize — after the last cadence window, possibly after the
      sink's consumer stopped caring — is always retained even if the
      subclass throttles or defers its visible effect.
    * ``close()`` — idempotent.  Calls :meth:`flush` exactly once, so
      any effect a throttled :meth:`on_snapshot` deferred (a pending
      dashboard render, a buffered SSE frame) is emitted rather than
      dropped.  Delivery after ``close()`` still updates
      ``last_snapshot`` (nothing is silently lost) but subclasses may
      skip side effects via ``self.closed``.

    Subclasses implement :meth:`on_snapshot` and optionally
    :meth:`flush`.
    """

    def __init__(self) -> None:
        self.last_snapshot: Optional[Snapshot] = None
        self.n_received = 0
        self.closed = False

    def __call__(self, snapshot: Snapshot) -> None:
        self.last_snapshot = snapshot
        self.n_received += 1
        self.on_snapshot(snapshot)

    def on_snapshot(self, snapshot: Snapshot) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        """Emit any deferred effect; called once by :meth:`close`."""

    def close(self) -> None:
        if self.closed:
            return
        try:
            self.flush()
        finally:
            self.closed = True


# ---------------------------------------------------------------------------
# Wire formats
# ---------------------------------------------------------------------------


class SnapshotStreamWriter(SnapshotSink):
    """Incremental NDJSON snapshot stream (``--stream-metrics FILE|-``).

    One :meth:`Snapshot.to_dict` JSON object per line, flushed as it is
    written so a tailing consumer (or the ``repro.serve`` SSE bridge)
    sees snapshots the moment they publish.  Validated by
    ``python -m repro.obs.validate --schema snapshot``.
    """

    def __init__(self, dest: Union[str, IO[str]]) -> None:
        super().__init__()
        self._owns = False
        if dest == "-":
            self.stream: IO[str] = sys.stdout
        elif isinstance(dest, str):
            self.stream = open(dest, "w")
            self._owns = True
        else:
            self.stream = dest
        self.n_written = 0

    def on_snapshot(self, snapshot: Snapshot) -> None:
        if self.closed:
            return
        self.stream.write(
            json.dumps(snapshot.to_dict(), allow_nan=False, default=repr)
        )
        self.stream.write("\n")
        self.stream.flush()
        self.n_written += 1

    def flush(self) -> None:
        try:
            self.stream.flush()
        except ValueError:  # already-closed underlying file
            pass

    def close(self) -> None:
        if self.closed:
            return
        super().close()
        if self._owns:
            self.stream.close()
            self._owns = False


def _prom_name(name: str, prefix: str = "repro") -> str:
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    metric = "".join(out)
    if metric and metric[0].isdigit():
        metric = "_" + metric
    return f"{prefix}_{metric}"


def _prom_value(value: Any) -> Optional[str]:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    if value != value:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value))


def snapshot_to_prometheus(snapshot: Snapshot, prefix: str = "repro") -> str:
    """Prometheus text exposition (version 0.0.4) of one snapshot.

    Counters render as ``<prefix>_<name>_total`` counters, gauges as
    gauges, histogram summaries as ``_count``/``_sum`` pairs, and
    per-source progress as ``<prefix>_progress_done{source="..."}``
    (plus one gauge per progress metric).  Worker snapshots carry a
    ``worker`` label.  This string is what the future ``repro.serve``
    ``/metrics`` endpoint returns verbatim.
    """
    labels = "" if snapshot.worker is None else f'{{worker="{snapshot.worker}"}}'

    def source_labels(source: str) -> str:
        if snapshot.worker is None:
            return f'{{source="{source}"}}'
        return f'{{source="{source}",worker="{snapshot.worker}"}}'

    lines: List[str] = []
    for name in sorted(snapshot.counters):
        value = _prom_value(snapshot.counters[name])
        if value is None:
            continue
        metric = _prom_name(name, prefix) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}{labels} {value}")
    for name in sorted(snapshot.gauges):
        value = _prom_value(snapshot.gauges[name])
        if value is None:
            continue
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric}{labels} {value}")
    for name in sorted(snapshot.histograms):
        summary = snapshot.histograms[name]
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} summary")
        lines.append(f"{metric}_count{labels} {int(summary.get('count', 0))}")
        lines.append(
            f"{metric}_sum{labels} {_prom_value(summary.get('sum', 0.0))}"
        )
    for source in sorted(snapshot.progress):
        state = snapshot.progress[source]
        slabels = source_labels(source)
        done_metric = _prom_name("progress.done", prefix)
        lines.append(f"# TYPE {done_metric} gauge")
        lines.append(f"{done_metric}{slabels} {int(state.get('done', 0))}")
        total = state.get("total")
        if total is not None:
            total_metric = _prom_name("progress.total", prefix)
            lines.append(f"# TYPE {total_metric} gauge")
            lines.append(f"{total_metric}{slabels} {int(total)}")
        for key in sorted(state.get("metrics", {})):
            value = _prom_value(state["metrics"][key])
            if value is None:
                continue
            metric = _prom_name(f"progress.{key}", prefix)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric}{slabels} {value}")
    lines.append("")
    return "\n".join(lines)
