"""Observability for the slice→compile→infer pipeline.

The package gives every layer of the system a shared, near-zero-cost
way to report what it is doing:

* **Spans** — hierarchical timed regions with attributes (each SLI
  stage, IR lowering, executor compilation, the parallel fan-out and
  its per-worker chains).
* **Metrics** — monotonic counters (cache hits/misses/evictions,
  slice statements kept/dropped per CFG node class), last-value
  gauges, and histograms.
* **Progress** — per-iteration engine reports (acceptance rate,
  log-weight ESS, SMC resamples) that can drive a stderr progress
  line.

The default ambient recorder is :data:`NULL_RECORDER`, whose every
method is a no-op — ``benchmarks/bench_obs_overhead.py`` holds the
disabled-path overhead under 2%.  Install a :class:`TraceRecorder`
with :func:`use_recorder` (the CLI's ``--trace`` / ``--progress`` /
``--metrics-summary`` and the harness's ``recorder=`` do this), then
export with :func:`write_trace` (JSONL or Chrome trace-event format —
load the latter in ``chrome://tracing`` or https://ui.perfetto.dev).
"""

from .export import (
    TRACE_FORMATS,
    chrome_trace_events,
    format_metrics_summary,
    iter_jsonl_records,
    write_chrome_trace,
    write_jsonl,
    write_trace,
)
from .progress import ProgressLine
from .recorder import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    Span,
    TraceRecorder,
    current_recorder,
    use_recorder,
)
from .live import (
    MetricsRegistry,
    Snapshot,
    SnapshotRecorder,
    SnapshotSink,
    SnapshotStreamWriter,
    TimeSeries,
    snapshot_to_prometheus,
)
from .health import (
    HealthReport,
    HealthTracker,
    HealthWarning,
)
from .watch import WatchDashboard

__all__ = [
    "NULL_RECORDER",
    "NullRecorder",
    "Recorder",
    "Span",
    "TraceRecorder",
    "current_recorder",
    "use_recorder",
    "ProgressLine",
    "TRACE_FORMATS",
    "chrome_trace_events",
    "format_metrics_summary",
    "iter_jsonl_records",
    "write_chrome_trace",
    "write_jsonl",
    "write_trace",
    "MetricsRegistry",
    "Snapshot",
    "SnapshotRecorder",
    "SnapshotSink",
    "SnapshotStreamWriter",
    "TimeSeries",
    "snapshot_to_prometheus",
    "HealthReport",
    "HealthTracker",
    "HealthWarning",
    "WatchDashboard",
]
