"""The stderr progress line (``--progress``).

A :class:`ProgressLine` is a plain callable suitable for
``TraceRecorder(on_progress=...)``: every progress event overwrites a
single ``\\r``-terminated stderr line with the latest per-engine
counts and metrics.  Output is throttled (default 10 Hz) so tight
reporting loops never turn into I/O storms, and suppressed entirely
when stderr is not a TTY unless ``force=True`` (CI smoke tests force
it to assert on the output).
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, IO, Optional

__all__ = ["ProgressLine"]


class ProgressLine:
    """Render progress events as one self-overwriting stderr line."""

    def __init__(
        self,
        stream: Optional[IO[str]] = None,
        min_interval: float = 0.1,
        force: bool = False,
    ) -> None:
        self.stream = sys.stderr if stream is None else stream
        self.min_interval = min_interval
        self.force = force
        self._last_write = 0.0
        self._dirty = False
        self._width = 0

    def _active(self) -> bool:
        if self.force:
            return True
        isatty = getattr(self.stream, "isatty", None)
        return bool(isatty and isatty())

    def __call__(self, event: Dict[str, Any]) -> None:
        if not self._active():
            return
        now = time.monotonic()
        done, total = event["done"], event["total"]
        finished = total is not None and done >= total
        if not finished and now - self._last_write < self.min_interval:
            return
        self._last_write = now
        parts = [f"[{event['source']}]"]
        if total is not None:
            # ``total == 0`` is a known-empty run, not an unknown
            # total: it is born finished, so render it at 100%.
            pct = 100.0 if total == 0 else 100.0 * done / total
            parts.append(f"{done}/{total} ({pct:.0f}%)")
        else:
            parts.append(str(done))
        for key, value in event["metrics"].items():
            if isinstance(value, float):
                parts.append(f"{key}={value:.3g}")
            else:
                parts.append(f"{key}={value}")
        line = " ".join(parts)
        pad = max(0, self._width - len(line))
        self._width = len(line)
        self.stream.write("\r" + line + " " * pad)
        self.stream.flush()
        self._dirty = True

    def close(self) -> None:
        """Terminate the in-place line (call once, after inference)."""
        if self._dirty:
            self.stream.write("\n")
            self.stream.flush()
            self._dirty = False
