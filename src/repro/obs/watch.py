"""The ``--watch`` terminal dashboard.

:class:`WatchDashboard` generalises :class:`~repro.obs.progress.ProgressLine`
from one self-overwriting line to a self-redrawing block: one row per
progress source (and per worker — in-flight snapshots from
:class:`~repro.runtime.parallel.ParallelRunner` workers carry their
worker index, so a ``--jobs 4`` run shows four live rows), plus the
most recent health warnings.

On a TTY the block redraws in place with ANSI cursor movement.  When
stderr is not a TTY the dashboard stays silent unless ``force=True``
(the CI smoke mode), in which case it prints plain sequential render
blocks with no escape codes — safe to pipe, grep, and diff.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, IO, List, Optional, Tuple

from .live import Snapshot, SnapshotSink

__all__ = ["WatchDashboard"]


def _fmt_metric(key: str, value: Any) -> str:
    if isinstance(value, float):
        return f"{key}={value:.3g}"
    return f"{key}={value}"


class WatchDashboard(SnapshotSink):
    """Render the snapshot stream as a live multi-row status block."""

    def __init__(
        self,
        stream: Optional[IO[str]] = None,
        min_interval: float = 0.1,
        force: bool = False,
        max_warnings: int = 4,
        clock: Any = time.monotonic,
    ) -> None:
        super().__init__()
        self.stream = sys.stderr if stream is None else stream
        self.min_interval = min_interval
        self.force = force
        self.max_warnings = max_warnings
        self._clock = clock
        self._last_write: Optional[float] = None
        self._rows: Dict[str, str] = {}
        self._warnings: List[str] = []
        self._drawn = 0
        self._header = ""
        #: A snapshot updated the rows but the render was throttled;
        #: :meth:`flush` (via ``close``) emits it so the finalize-time
        #: snapshot is never dropped from the terminal.
        self._dirty = False
        self.n_renders = 0

    # -- input -----------------------------------------------------------------

    def _active(self) -> bool:
        if self.force:
            return True
        isatty = getattr(self.stream, "isatty", None)
        return bool(isatty and isatty())

    def on_snapshot(self, snapshot: Snapshot) -> None:
        """Fold one snapshot into the rows (subscriber entry point)."""
        for source, state in snapshot.progress.items():
            key = (
                source
                if snapshot.worker is None
                else f"w{snapshot.worker}/{source}"
            )
            self._rows[key] = self._format_row(key, state)
        self._header = f"watch t={snapshot.t:.2f}s seq={snapshot.seq}"
        self._dirty = True
        if not self._active():
            return
        now = self._clock()
        if (
            self._last_write is not None
            and now - self._last_write < self.min_interval
        ):
            return
        self._last_write = now
        self._render()

    def note_warning(self, warning: Any) -> None:
        """Health-warning callback (``HealthTracker.on_warning``)."""
        where = warning.source
        if warning.worker is not None:
            where = f"w{warning.worker}/{where}"
        line = f"!! [{warning.severity}] {warning.kind} {where}: {warning.message}"
        self._warnings.append(line)
        del self._warnings[: -self.max_warnings]

    # -- output ----------------------------------------------------------------

    def _format_row(self, key: str, state: Dict[str, Any]) -> str:
        done = int(state.get("done", 0))
        total = state.get("total")
        parts = [f"[{key}]"]
        if total is not None:
            pct = 100.0 if total == 0 else 100.0 * done / total
            parts.append(f"{done}/{int(total)} ({pct:.0f}%)")
        else:
            parts.append(str(done))
        for mkey in sorted(state.get("metrics", {})):
            parts.append(_fmt_metric(mkey, state["metrics"][mkey]))
        return " ".join(parts)

    def _lines(self) -> List[str]:
        lines = [self._header] if self._header else []
        lines.extend(self._rows[key] for key in sorted(self._rows))
        lines.extend(self._warnings)
        return lines

    def _render(self) -> None:
        lines = self._lines()
        if not lines:
            return
        tty = getattr(self.stream, "isatty", None)
        if tty and tty():
            out = []
            if self._drawn:
                out.append(f"\x1b[{self._drawn}F")  # up to block start
            for line in lines:
                out.append("\x1b[2K" + line + "\n")
            # A shrinking block (rows can only grow today, but be safe)
            for _ in range(max(0, self._drawn - len(lines))):
                out.append("\x1b[2K\n")
            self.stream.write("".join(out))
            self._drawn = max(len(lines), self._drawn)
        else:
            self.stream.write("\n".join(lines) + "\n")
        self.stream.flush()
        self.n_renders += 1
        self._dirty = False

    def flush(self) -> None:
        """Force one final render (terminal state always shown), even
        when the last snapshot landed inside the throttle window."""
        if self._active() and (self._rows or self._warnings):
            self._last_write = self._clock()
            self._render()

    # -- introspection (tests) -------------------------------------------------

    def rows(self) -> Dict[str, str]:
        return dict(self._rows)

    def warnings(self) -> Tuple[str, ...]:
        return tuple(self._warnings)
