"""Validate JSONL trace / NDJSON snapshot exports against the
checked-in schemas.

Usage::

    python -m repro.obs.validate TRACE.jsonl [...]
    python -m repro.obs.validate --schema snapshot METRICS.ndjson [...]

``--schema trace`` (the default) validates ``--trace`` JSONL exports
against ``trace_schema.json``; ``--schema snapshot`` validates
``--stream-metrics`` NDJSON streams against ``snapshot_schema.json``.

Exit status 0 when every line of every file validates, 1 otherwise.
Requires the ``jsonschema`` package (a dev dependency — CI's
``obs-smoke``/``health-smoke`` jobs install it); a clear error is
printed when it is missing rather than an ImportError traceback.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Dict, List, Optional, Tuple

__all__ = [
    "SCHEMA_PATH",
    "SCHEMA_PATHS",
    "load_schema",
    "validate_jsonl",
    "main",
]

SCHEMA_PATHS: Dict[str, str] = {
    "trace": os.path.join(os.path.dirname(__file__), "trace_schema.json"),
    "snapshot": os.path.join(
        os.path.dirname(__file__), "snapshot_schema.json"
    ),
}

#: Back-compat alias: the PR 3 trace schema.
SCHEMA_PATH = SCHEMA_PATHS["trace"]


def load_schema(kind: str = "trace") -> dict:
    try:
        path = SCHEMA_PATHS[kind]
    except KeyError:
        raise ValueError(
            f"unknown schema {kind!r} (expected one of {sorted(SCHEMA_PATHS)})"
        ) from None
    with open(path) as f:
        return json.load(f)


def validate_jsonl(path: str, schema: str = "trace") -> List[Tuple[int, str]]:
    """Validate every line of ``path``; returns ``(lineno, error)``
    pairs (empty means the file is valid)."""
    try:
        import jsonschema
    except ImportError as exc:  # pragma: no cover - dev-dep missing
        raise RuntimeError(
            "trace validation needs the 'jsonschema' package "
            "(pip install jsonschema)"
        ) from exc

    validator = jsonschema.Draft202012Validator(load_schema(schema))
    errors: List[Tuple[int, str]] = []
    with open(path) as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                errors.append((lineno, f"not JSON: {exc}"))
                continue
            for err in validator.iter_errors(record):
                errors.append((lineno, err.message))
    return errors


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    schema = "trace"
    if "--schema" in argv:
        at = argv.index("--schema")
        try:
            schema = argv[at + 1]
        except IndexError:
            print("--schema needs a value (trace|snapshot)", file=sys.stderr)
            return 2
        del argv[at : at + 2]
    if schema not in SCHEMA_PATHS:
        print(
            f"unknown schema {schema!r} (expected trace|snapshot)",
            file=sys.stderr,
        )
        return 2
    if not argv:
        print(
            "usage: python -m repro.obs.validate "
            "[--schema trace|snapshot] FILE [...]",
            file=sys.stderr,
        )
        return 2
    status = 0
    for path in argv:
        try:
            errors = validate_jsonl(path, schema=schema)
        except (OSError, RuntimeError) as exc:
            print(f"{path}: {exc}", file=sys.stderr)
            status = 1
            continue
        if errors:
            status = 1
            for lineno, message in errors[:20]:
                print(f"{path}:{lineno}: {message}", file=sys.stderr)
            if len(errors) > 20:
                print(f"{path}: ... {len(errors) - 20} more", file=sys.stderr)
        else:
            print(f"{path}: ok ({schema})")
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
