"""Validate a JSONL trace export against the checked-in schema.

Usage::

    python -m repro.obs.validate TRACE.jsonl [...]

Exit status 0 when every line of every file validates, 1 otherwise.
Requires the ``jsonschema`` package (a dev dependency — CI's
``obs-smoke`` job installs it); a clear error is printed when it is
missing rather than an ImportError traceback.
"""

from __future__ import annotations

import json
import os
import sys
from typing import List, Optional, Tuple

__all__ = ["SCHEMA_PATH", "load_schema", "validate_jsonl", "main"]

SCHEMA_PATH = os.path.join(os.path.dirname(__file__), "trace_schema.json")


def load_schema() -> dict:
    with open(SCHEMA_PATH) as f:
        return json.load(f)


def validate_jsonl(path: str) -> List[Tuple[int, str]]:
    """Validate every line of ``path``; returns ``(lineno, error)``
    pairs (empty means the file is valid)."""
    try:
        import jsonschema
    except ImportError as exc:  # pragma: no cover - dev-dep missing
        raise RuntimeError(
            "trace validation needs the 'jsonschema' package "
            "(pip install jsonschema)"
        ) from exc

    validator = jsonschema.Draft202012Validator(load_schema())
    errors: List[Tuple[int, str]] = []
    with open(path) as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                errors.append((lineno, f"not JSON: {exc}"))
                continue
            for err in validator.iter_errors(record):
                errors.append((lineno, err.message))
    return errors


def main(argv: Optional[List[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv:
        print("usage: python -m repro.obs.validate TRACE.jsonl [...]", file=sys.stderr)
        return 2
    status = 0
    for path in argv:
        try:
            errors = validate_jsonl(path)
        except (OSError, RuntimeError) as exc:
            print(f"{path}: {exc}", file=sys.stderr)
            status = 1
            continue
        if errors:
            status = 1
            for lineno, message in errors[:20]:
                print(f"{path}:{lineno}: {message}", file=sys.stderr)
            if len(errors) > 20:
                print(f"{path}: ... {len(errors) - 20} more", file=sys.stderr)
        else:
            print(f"{path}: ok")
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
