"""Vectorizability analysis and bounded loop unrolling.

The array backend (:mod:`repro.semantics.vectorized`) compiles a
program to straight-line numpy code over a ``(batch,)`` array per
variable, with ``if`` branches handled by predicated select.  That
compilation scheme only exists for a *fragment* of PROB:

* every ``while`` loop must have a **statically determined trip
  count** — a condition that constant-folds to the same boolean on
  every lane, every iteration (the canonical ``i = 0; while (i < K)
  { ...; i = i + 1; }`` counter loop).  Such loops are unrolled here,
  each iteration keeping its own ``('W', k)`` address component so
  sample-site addresses match the interpreter's exactly;
* the trip count must not exceed the **unroll budget** (data-dependent
  or probabilistic trip counts are rejected outright — a per-lane
  trip count cannot be predicated away without per-iteration masks on
  a bound nobody knows);
* every sampled/observed distribution must have a batched handler
  (the caller passes the supported set);
* the right operand of ``&&`` / ``||`` must not contain a division or
  modulo whose divisor is not a non-zero constant: the scalar
  semantics short-circuits (never evaluating the right side), while
  the array backend evaluates both sides on all lanes, so a guarded
  ``x != 0 && 1 / x > 0`` would raise on lanes the interpreter
  protects;
* tuple expressions are only allowed in return position (they have no
  single-array representation).

Programs outside the fragment raise the typed :exc:`NotVectorizable`
with a machine-readable ``reason`` (``while.data-dependent``,
``while.budget``, ``dist.<Name>``, ``expr.shortcircuit-division``,
``expr.tuple``); engines catch it, record an obs counter, and fall
back to the closure backend.

The analysis threads a concrete constant environment through the
region tree (assignments of constant-foldable expressions are tracked;
samples and merge-divergent branches invalidate), so nested counter
loops unroll correctly even when an inner bound depends on the outer
counter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

from ..core.ast import (
    Assign,
    Binary,
    Const,
    Decl,
    DistCall,
    Expr,
    Factor,
    Observe,
    ObserveSample,
    Sample,
    TupleExpr,
    Unary,
    Var,
)
from ..ir.lower import IfRegion, Leaf, Lowered, Region, Seq, WhileRegion
from ..semantics.values import EvalError, Value, default_value, eval_expr

__all__ = [
    "NotVectorizable",
    "UnrolledLoop",
    "VecRegion",
    "DEFAULT_UNROLL_BUDGET",
    "unroll_regions",
]

#: Default per-loop unroll cap.  Generous for the counter loops the
#: generator and the paper's models produce, small enough that the
#: generated straight-line source stays manageable.
DEFAULT_UNROLL_BUDGET = 128


class NotVectorizable(Exception):
    """The program lies outside the vectorizable fragment.

    ``reason`` is a short machine-readable token (used in obs counter
    names); the exception message carries the human explanation.
    """

    def __init__(self, reason: str, message: str = "") -> None:
        self.reason = reason
        super().__init__(message or reason)


@dataclass(frozen=True)
class UnrolledLoop:
    """A ``while`` replaced by its statically-unrolled iterations.

    ``iterations[k]`` is the (recursively unrolled) body copy for
    iteration ``k``; codegen addresses its sample sites with the same
    ``('W', k)`` component the interpreter uses at run time.
    """

    node: int
    iterations: Tuple["VecRegion", ...]


VecRegion = Union[Leaf, Seq, IfRegion, UnrolledLoop]

_ConstEnv = Dict[str, Value]


def _const_eval(expr: Expr, env: _ConstEnv) -> Optional[Value]:
    """Evaluate ``expr`` over the known-constant environment, or
    ``None`` when it depends on anything unknown (or errors)."""
    try:
        return eval_expr(expr, env)
    except EvalError:
        return None


def _has_unsafe_division(expr: Expr) -> bool:
    """True when ``expr`` contains ``/`` or ``%`` whose divisor is not
    a non-zero constant."""
    if isinstance(expr, (Var, Const)):
        return False
    if isinstance(expr, Unary):
        return _has_unsafe_division(expr.operand)
    if isinstance(expr, Binary):
        if expr.op in ("/", "%"):
            right = expr.right
            if not (isinstance(right, Const) and right.value != 0):
                return True
        return _has_unsafe_division(expr.left) or _has_unsafe_division(expr.right)
    if isinstance(expr, TupleExpr):
        return any(_has_unsafe_division(e) for e in expr.elements)
    return False


class _Analyzer:
    def __init__(
        self,
        budget: int,
        supported_dists: Optional[frozenset],
    ) -> None:
        self.budget = budget
        self.supported = supported_dists

    # -- expression fragment checks -----------------------------------------

    def check_expr(self, expr: Expr) -> None:
        if isinstance(expr, (Var, Const)):
            return
        if isinstance(expr, Unary):
            self.check_expr(expr.operand)
            return
        if isinstance(expr, Binary):
            if expr.op in ("&&", "||") and _has_unsafe_division(expr.right):
                raise NotVectorizable(
                    "expr.shortcircuit-division",
                    f"division under short-circuit in {expr}: the scalar "
                    "semantics may never evaluate the divisor",
                )
            self.check_expr(expr.left)
            self.check_expr(expr.right)
            return
        if isinstance(expr, TupleExpr):
            raise NotVectorizable(
                "expr.tuple",
                "tuple expressions are only vectorizable in return position",
            )
        raise NotVectorizable("expr.unknown", f"not an expression: {expr!r}")

    def check_dist(self, dist: DistCall) -> None:
        if self.supported is not None and dist.name not in self.supported:
            raise NotVectorizable(
                f"dist.{dist.name}",
                f"distribution {dist.name!r} has no batched handler",
            )
        for arg in dist.args:
            self.check_expr(arg)

    # -- region walk ---------------------------------------------------------

    def region(self, region: Region, env: _ConstEnv) -> VecRegion:
        if isinstance(region, Leaf):
            if region.node is not None:
                self._leaf(region.stmt, env)
            return region
        if isinstance(region, Seq):
            return Seq(tuple(self.region(c, env) for c in region.children))
        if isinstance(region, IfRegion):
            self.check_expr(region.cond)
            then_env = dict(env)
            else_env = dict(env)
            then_region = self.region(region.then_region, then_env)
            else_region = self.region(region.else_region, else_env)
            env.clear()
            for name, value in then_env.items():
                other = else_env.get(name, _MISSING)
                if other is not _MISSING and other == value and type(other) is type(value):
                    env[name] = value
            return IfRegion(region.cond, region.node, then_region, else_region)
        if isinstance(region, WhileRegion):
            return self._while(region, env)
        raise NotVectorizable("region.unknown", f"not a region: {region!r}")

    def _leaf(self, stmt, env: _ConstEnv) -> None:
        if isinstance(stmt, Decl):
            try:
                env[stmt.name] = default_value(stmt.type)
            except EvalError:
                env.pop(stmt.name, None)
        elif isinstance(stmt, Assign):
            self.check_expr(stmt.expr)
            value = _const_eval(stmt.expr, env)
            if value is None or isinstance(value, tuple):
                env.pop(stmt.name, None)
            else:
                env[stmt.name] = value
        elif isinstance(stmt, Sample):
            self.check_dist(stmt.dist)
            env.pop(stmt.name, None)
        elif isinstance(stmt, Observe):
            self.check_expr(stmt.cond)
        elif isinstance(stmt, ObserveSample):
            self.check_dist(stmt.dist)
            self.check_expr(stmt.value)
        elif isinstance(stmt, Factor):
            self.check_expr(stmt.log_weight)
        else:
            raise NotVectorizable(
                "stmt.unknown", f"not a primitive statement: {stmt!r}"
            )

    def _while(self, region: WhileRegion, env: _ConstEnv) -> UnrolledLoop:
        self.check_expr(region.cond)
        iterations = []
        for _ in range(self.budget):
            cond = _const_eval(region.cond, env)
            if cond is None:
                raise NotVectorizable(
                    "while.data-dependent",
                    f"while condition {region.cond} does not constant-fold; "
                    "the trip count is data-dependent",
                )
            if cond is not True:
                return UnrolledLoop(region.node, tuple(iterations))
            iterations.append(self.region(region.body, env))
        cond = _const_eval(region.cond, env)
        if cond is None:
            raise NotVectorizable(
                "while.data-dependent",
                f"while condition {region.cond} stopped constant-folding "
                f"after {self.budget} iterations",
            )
        if cond is True:
            raise NotVectorizable(
                "while.budget",
                f"while loop exceeds the unroll budget of {self.budget} "
                "iterations",
            )
        return UnrolledLoop(region.node, tuple(iterations))


_MISSING = object()


def unroll_regions(
    lowered: Lowered,
    budget: int = DEFAULT_UNROLL_BUDGET,
    supported_dists: Optional[frozenset] = None,
) -> VecRegion:
    """Analyze ``lowered`` for vectorizability and return its loop-free
    region tree (``while`` regions replaced by :class:`UnrolledLoop`).

    Raises :exc:`NotVectorizable` for programs outside the fragment.
    ``supported_dists``, when given, restricts the allowed
    distribution names (the array backend passes its batched registry).
    """
    analyzer = _Analyzer(budget, supported_dists)
    ret = lowered.ret
    if ret is not None:
        # Tuple returns are fine (handled element-wise); check elements.
        if isinstance(ret, TupleExpr):
            for element in ret.elements:
                analyzer.check_expr(element)
        else:
            analyzer.check_expr(ret)
    return analyzer.region(lowered.root, {})
