"""Basic-block control-flow graphs for PROB programs.

A :class:`CFG` holds one :class:`Node` per primitive statement
(``skip`` produces no node) plus *branch* nodes for ``if`` / ``while``
conditions, grouped into :class:`BasicBlock`\\ s of straight-line code.
``observe`` / ``sample`` / ``factor`` are first-class node kinds, which
is what makes the probabilistic analyses (observe dependence, the
compiled executor's conditioning barriers) graph-local queries.

On top of the raw graph the class computes, on demand and cached:

* immediate dominators / postdominators (Cooper–Harvey–Kennedy
  iteration over a reverse-postorder numbering — near-linear on the
  reducible graphs structured lowering produces);
* block-level **control dependence** via the postdominator frontier
  (Ferrante–Ottenstein–Warren): block ``v`` is control-dependent on
  branch block ``u`` iff ``u`` has a successor that ``v`` postdominates
  while ``v`` does not strictly postdominate ``u``;
* the transitive control-dependence *closure*, which for structured
  programs coincides with "the stack of enclosing branch conditions" —
  exactly the control context Figure 9's ``DEP`` rules thread through
  the AST.

Every loop header is control-dependent on itself (the back edge makes
its own condition decide whether it executes again); consumers that
mirror the paper's AST formulation filter that reflexive entry out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from ..core.ast import Expr, Stmt

__all__ = ["Node", "BasicBlock", "CFG", "NODE_KINDS"]

#: Node kinds.  ``stmt`` nodes carry a primitive statement; ``branch``
#: (if) and ``loop`` (while header) nodes carry a condition expression.
NODE_KINDS = ("stmt", "branch", "loop")


@dataclass
class Node:
    """One CFG node: a primitive statement or a branch condition."""

    id: int
    kind: str  # one of NODE_KINDS
    stmt: Optional[Stmt] = None
    cond: Optional[Expr] = None
    #: Index of the owning basic block (set during construction).
    block: int = -1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        payload = self.stmt if self.stmt is not None else self.cond
        return f"Node({self.id}, {self.kind}, {payload})"


@dataclass
class BasicBlock:
    """A maximal straight-line run of nodes.

    A block ends at (and contains) at most one ``branch``/``loop``
    node, always in last position; blocks with two successors are
    exactly the blocks ending in such a node, and the first successor
    is the true edge.
    """

    id: int
    nodes: List[int] = field(default_factory=list)
    succ: List[int] = field(default_factory=list)
    pred: List[int] = field(default_factory=list)


class CFG:
    """A control-flow graph with a unique entry and exit block."""

    def __init__(self) -> None:
        self.nodes: List[Node] = []
        self.blocks: List[BasicBlock] = []
        self.entry: int = self.new_block()  # block id 0
        self.exit: int = -1  # set by seal()
        self._ipdom: Optional[Dict[int, int]] = None
        self._idom: Optional[Dict[int, int]] = None
        self._cd: Optional[Dict[int, FrozenSet[int]]] = None
        self._cd_closure: Optional[Dict[int, FrozenSet[int]]] = None

    # -- construction (used by repro.ir.lower) --------------------------------

    def new_block(self) -> int:
        block = BasicBlock(len(self.blocks))
        self.blocks.append(block)
        return block.id

    def new_node(
        self,
        kind: str,
        block: int,
        stmt: Optional[Stmt] = None,
        cond: Optional[Expr] = None,
    ) -> int:
        if kind not in NODE_KINDS:
            raise ValueError(f"unknown node kind: {kind!r}")
        node = Node(len(self.nodes), kind, stmt, cond, block)
        self.nodes.append(node)
        self.blocks[block].nodes.append(node.id)
        return node.id

    def add_edge(self, src: int, dst: int) -> None:
        self.blocks[src].succ.append(dst)
        self.blocks[dst].pred.append(src)

    def seal(self, exit_block: int) -> None:
        """Mark construction complete; ``exit_block`` is the unique exit."""
        self.exit = exit_block

    # -- basic queries --------------------------------------------------------

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def block_of(self, node_id: int) -> BasicBlock:
        return self.blocks[self.nodes[node_id].block]

    def branch_node_of_block(self, block_id: int) -> Optional[int]:
        """The branch/loop node terminating ``block_id``, if any."""
        nodes = self.blocks[block_id].nodes
        if nodes and self.nodes[nodes[-1]].kind in ("branch", "loop"):
            return nodes[-1]
        return None

    def iter_nodes(self) -> Iterator[Node]:
        """Nodes in creation order — which lowering guarantees is AST
        pre-order, the traversal order the paper's analyses use."""
        return iter(self.nodes)

    def flow_edges(self) -> Iterator[Tuple[int, int]]:
        for block in self.blocks:
            for dst in block.succ:
                yield block.id, dst

    # -- dominators -----------------------------------------------------------

    def _rpo(self, root: int, forward: bool) -> List[int]:
        """Reverse postorder over blocks from ``root`` following
        successor (forward) or predecessor (backward) edges."""
        succ = (
            (lambda b: self.blocks[b].succ)
            if forward
            else (lambda b: self.blocks[b].pred)
        )
        seen = {root}
        order: List[int] = []
        stack: List[Tuple[int, Iterator[int]]] = [(root, iter(succ(root)))]
        while stack:
            block, it = stack[-1]
            advanced = False
            for nxt in it:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, iter(succ(nxt))))
                    advanced = True
                    break
            if not advanced:
                order.append(block)
                stack.pop()
        order.reverse()
        return order

    def _compute_idoms(self, root: int, forward: bool) -> Dict[int, int]:
        """Cooper–Harvey–Kennedy immediate (post)dominators."""
        rpo = self._rpo(root, forward)
        number = {b: i for i, b in enumerate(rpo)}
        preds = (
            (lambda b: self.blocks[b].pred)
            if forward
            else (lambda b: self.blocks[b].succ)
        )
        idom: Dict[int, int] = {root: root}

        def intersect(a: int, b: int) -> int:
            while a != b:
                while number[a] > number[b]:
                    a = idom[a]
                while number[b] > number[a]:
                    b = idom[b]
            return a

        changed = True
        while changed:
            changed = False
            for block in rpo:
                if block == root:
                    continue
                new_idom = -1
                for p in preds(block):
                    if p not in number or p not in idom:
                        continue
                    new_idom = p if new_idom == -1 else intersect(p, new_idom)
                if new_idom != -1 and idom.get(block) != new_idom:
                    idom[block] = new_idom
                    changed = True
        return idom

    def idoms(self) -> Dict[int, int]:
        """Immediate dominators (block → idom block; entry maps to itself)."""
        if self._idom is None:
            self._idom = self._compute_idoms(self.entry, forward=True)
        return self._idom

    def ipdoms(self) -> Dict[int, int]:
        """Immediate postdominators (block → ipdom; exit maps to itself)."""
        if self._ipdom is None:
            self._ipdom = self._compute_idoms(self.exit, forward=False)
        return self._ipdom

    def dominates(self, a: int, b: int) -> bool:
        """Does block ``a`` dominate block ``b``?"""
        idom = self.idoms()
        while True:
            if a == b:
                return True
            nxt = idom.get(b, b)
            if nxt == b:
                return False
            b = nxt

    def postdominates(self, a: int, b: int) -> bool:
        """Does block ``a`` postdominate block ``b``?"""
        ipdom = self.ipdoms()
        while True:
            if a == b:
                return True
            nxt = ipdom.get(b, b)
            if nxt == b:
                return False
            b = nxt

    # -- control dependence ---------------------------------------------------

    def control_dependence(self) -> Dict[int, FrozenSet[int]]:
        """Block-level control dependence: block → the *branch nodes*
        it is directly control-dependent on.

        Ferrante–Ottenstein–Warren over the postdominator tree: for each
        flow edge ``u → v`` where ``v`` does not postdominate ``u``,
        every block on the postdominator-tree path from ``v`` up to (but
        excluding) ``ipdom(u)`` is control-dependent on ``u``'s
        terminating branch node.
        """
        if self._cd is not None:
            return self._cd
        ipdom = self.ipdoms()
        cd: Dict[int, set] = {b.id: set() for b in self.blocks}
        for u, v in self.flow_edges():
            branch = self.branch_node_of_block(u)
            if branch is None:
                continue
            stop = ipdom.get(u, u)
            runner = v
            while runner != stop:
                cd[runner].add(branch)
                nxt = ipdom.get(runner, runner)
                if nxt == runner:
                    break  # unreachable-from-exit safety valve
                runner = nxt
        self._cd = {b: frozenset(s) for b, s in cd.items()}
        return self._cd

    def control_dependence_closure(self) -> Dict[int, FrozenSet[int]]:
        """Transitive control dependence: block → every branch node it
        is (transitively) control-dependent on.

        For the structured graphs lowering produces this is the chain of
        enclosing ``if``/``while`` conditions (loop headers include
        themselves via their back edge).
        """
        if self._cd_closure is not None:
            return self._cd_closure
        cd = self.control_dependence()
        closure: Dict[int, FrozenSet[int]] = {}

        def resolve(block: int, in_progress: set) -> FrozenSet[int]:
            done = closure.get(block)
            if done is not None:
                return done
            if block in in_progress:
                # Cycle (loop-header self dependence): the fixpoint adds
                # nothing beyond what the other callers accumulate.
                return frozenset(cd[block])
            in_progress.add(block)
            acc = set(cd[block])
            for branch in cd[block]:
                acc |= resolve(self.nodes[branch].block, in_progress)
            in_progress.discard(block)
            closure[block] = frozenset(acc)
            return closure[block]

        for block in cd:
            resolve(block, set())
        self._cd_closure = closure
        return closure

    def node_control_closure(self, node_id: int) -> FrozenSet[int]:
        """Branch nodes the given node is transitively control-dependent
        on, *excluding* itself (the paper's AST rules never make a loop
        condition depend on itself)."""
        closure = self.control_dependence_closure()
        branches = closure[self.nodes[node_id].block]
        if node_id in branches:
            branches = branches - {node_id}
        return branches

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CFG({len(self.nodes)} nodes, {len(self.blocks)} blocks, "
            f"entry={self.entry}, exit={self.exit})"
        )
