"""A generic worklist dataflow fixpoint engine over the CFG, plus the
node-level analyses the Amtoft–Banerjee slicing theory consumes.

Analyses describe themselves as a :class:`DataflowProblem` — direction,
lattice join, boundary value, and a per-node transfer function — and
:func:`solve` iterates block-level transfer to a fixpoint, applying the
node transfers in order (forward) or reverse (backward) within each
basic block.  Block-granular iteration is what keeps the engine
near-linear on the long straight-line Table-1 programs: a 3000-
statement chain is a single block and converges in one sweep.

:mod:`repro.semantics.liveness` is the canonical instance; the
Figure-9 dependence analysis uses the CFG's control-dependence
machinery directly (a reachability problem, not a lattice one).

The second half of the module serves the Amtoft–Banerjee theory
(arXiv 1711.02246): slicing as *weak slice sets* of CFG nodes, with no
SVF/SSA detour.  A node set ``Q`` is a weak slice set iff it is

* **closed under data dependence** — every definition one of its
  nodes may read is in ``Q`` (:func:`data_dependence`, built on
  :class:`ReachingDefinitions`), and
* **provides next observables** — from any branch node outside ``Q``,
  all paths agree on the first element of ``Q ∪ {End}`` they meet
  (the weak-postdomination condition; :func:`first_relevant` computes
  the per-block "first relevant node" sets whose disagreements
  :func:`weak_slice_closure` resolves by promoting branch nodes into
  ``Q``).

:func:`conditioning_nodes` lists the nodes the observe-closure
arbitration in :mod:`repro.transforms.cfgslice` must account for:
``observe`` / ``observe(D, E)`` / ``factor`` statements and loop
headers (this repo's semantics normalizes over *terminating*
permitted runs, so a loop condition conditions the output exactly like
an observation — dropping a kept-correlated loop would change the
distribution, see Example 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Generic,
    List,
    Mapping,
    Optional,
    Tuple,
    TypeVar,
)

from ..core.ast import Assign, Decl, Factor, Observe, ObserveSample, Sample
from ..core.freevars import free_vars
from .cfg import CFG, Node

__all__ = [
    "DataflowProblem",
    "DataflowSolution",
    "solve",
    "END",
    "node_def",
    "node_uses",
    "ReachingDefinitions",
    "CfgDataDeps",
    "data_dependence",
    "first_relevant",
    "weak_slice_closure",
    "conditioning_nodes",
]

L = TypeVar("L")


class DataflowProblem(Generic[L]):
    """A monotone dataflow problem on lattice values of type ``L``.

    Subclasses set ``direction`` (``"forward"`` or ``"backward"``) and
    implement the four hooks.  ``join`` must be monotone and ``transfer``
    distributive for the fixpoint to equal the merge-over-paths solution
    (all our instances are gen/kill problems, which are)."""

    direction: str = "forward"

    def boundary(self) -> L:
        """Value at the entry (forward) or exit (backward) of the CFG."""
        raise NotImplementedError

    def initial(self) -> L:
        """Optimistic initial value for every other block."""
        raise NotImplementedError

    def join(self, a: L, b: L) -> L:
        raise NotImplementedError

    def transfer(self, node: Node, value: L) -> L:
        """Push ``value`` across ``node`` (against the edge direction
        for backward problems)."""
        raise NotImplementedError


@dataclass
class DataflowSolution(Generic[L]):
    """Fixpoint values per block.

    ``block_in[b]`` is the value at the block's *entry* and
    ``block_out[b]`` at its *exit*, in control-flow orientation
    regardless of the analysis direction.  :meth:`node_values` replays
    the transfers of one block to recover per-node values on demand.
    """

    problem: DataflowProblem[L]
    cfg: CFG
    block_in: Dict[int, L]
    block_out: Dict[int, L]

    def entry_value(self) -> L:
        """The value observed at program entry (live-in of the whole
        program for backward liveness)."""
        return self.block_in[self.cfg.entry]

    def node_values(self, block_id: int) -> Dict[int, L]:
        """Per-node values within a block: for a backward problem the
        value *before* each node; for a forward problem the value
        *after* each node."""
        block = self.cfg.blocks[block_id]
        values: Dict[int, L] = {}
        if self.problem.direction == "backward":
            value = self.block_out[block_id]
            for node_id in reversed(block.nodes):
                value = self.problem.transfer(self.cfg.nodes[node_id], value)
                values[node_id] = value
        else:
            value = self.block_in[block_id]
            for node_id in block.nodes:
                value = self.problem.transfer(self.cfg.nodes[node_id], value)
                values[node_id] = value
        return values


def _apply_block(problem: DataflowProblem[L], cfg: CFG, block_id: int, value: L) -> L:
    nodes = cfg.blocks[block_id].nodes
    if problem.direction == "backward":
        nodes = list(reversed(nodes))
    for node_id in nodes:
        value = problem.transfer(cfg.nodes[node_id], value)
    return value


def solve(cfg: CFG, problem: DataflowProblem[L]) -> DataflowSolution[L]:
    """Iterate ``problem`` to its least fixpoint over ``cfg``.

    Standard worklist: seed the boundary block, propagate along flow
    edges (reversed for backward problems), re-queue dependents whose
    input changed.  Termination follows from join-monotonicity and the
    finite lattices our instances use (sets of program variables)."""
    backward = problem.direction == "backward"
    boundary_block = cfg.exit if backward else cfg.entry
    block_in: Dict[int, L] = {}
    block_out: Dict[int, L] = {}
    for block in cfg.blocks:
        block_in[block.id] = problem.initial()
        block_out[block.id] = problem.initial()
    if backward:
        block_out[boundary_block] = problem.boundary()
    else:
        block_in[boundary_block] = problem.boundary()

    worklist: List[int] = [b.id for b in cfg.blocks]
    in_list = set(worklist)
    while worklist:
        block_id = worklist.pop()
        in_list.discard(block_id)
        if backward:
            # out = join over successors' in; in = transfer(out).
            value = block_out[block_id]
            if block_id != boundary_block:
                succs = cfg.blocks[block_id].succ
                if succs:
                    value = block_in[succs[0]]
                    for s in succs[1:]:
                        value = problem.join(value, block_in[s])
                else:
                    value = problem.initial()
                block_out[block_id] = value
            new_in = _apply_block(problem, cfg, block_id, value)
            if new_in != block_in[block_id]:
                block_in[block_id] = new_in
                for p in cfg.blocks[block_id].pred:
                    if p not in in_list:
                        in_list.add(p)
                        worklist.append(p)
        else:
            value = block_in[block_id]
            if block_id != boundary_block:
                preds = cfg.blocks[block_id].pred
                if preds:
                    value = block_out[preds[0]]
                    for p in preds[1:]:
                        value = problem.join(value, block_out[p])
                else:
                    value = problem.initial()
                block_in[block_id] = value
            new_out = _apply_block(problem, cfg, block_id, value)
            if new_out != block_out[block_id]:
                block_out[block_id] = new_out
                for s in cfg.blocks[block_id].succ:
                    if s not in in_list:
                        in_list.add(s)
                        worklist.append(s)
    return DataflowSolution(problem, cfg, block_in, block_out)


# ---------------------------------------------------------------------------
# Amtoft–Banerjee node-level analyses
# ---------------------------------------------------------------------------

#: Sentinel pseudo-node standing for the program's ``End``: the unique
#: exit every weak-slice "first relevant element" computation bottoms
#: out at, and the point where the return expression's pseudo-use
#: lives.
END = -1


def node_def(node: Node) -> Optional[str]:
    """The variable ``node`` defines, if any (``Decl`` counts: it
    assigns the type's default value)."""
    stmt = node.stmt
    if isinstance(stmt, (Decl, Assign, Sample)):
        return stmt.name
    return None


def node_uses(node: Node) -> FrozenSet[str]:
    """The variables ``node`` reads: condition variables for branch /
    loop / observe nodes, right-hand sides otherwise."""
    if node.kind in ("branch", "loop"):
        return free_vars(node.cond)
    stmt = node.stmt
    if isinstance(stmt, Observe):
        return free_vars(stmt.cond)
    if isinstance(stmt, ObserveSample):
        return free_vars(stmt.dist) | free_vars(stmt.value)
    if isinstance(stmt, Factor):
        return free_vars(stmt.log_weight)
    if isinstance(stmt, Assign):
        return free_vars(stmt.expr)
    if isinstance(stmt, Sample):
        return free_vars(stmt.dist)
    return frozenset()  # Decl


class ReachingDefinitions(DataflowProblem[FrozenSet[Tuple[str, int]]]):
    """Classic forward gen/kill reaching definitions over ``(var,
    def-node)`` pairs.  No SSA required: a definition kills every other
    definition of the same variable within its path."""

    direction = "forward"

    def boundary(self) -> FrozenSet[Tuple[str, int]]:
        return frozenset()

    def initial(self) -> FrozenSet[Tuple[str, int]]:
        return frozenset()

    def join(
        self, a: FrozenSet[Tuple[str, int]], b: FrozenSet[Tuple[str, int]]
    ) -> FrozenSet[Tuple[str, int]]:
        return a | b

    def transfer(
        self, node: Node, value: FrozenSet[Tuple[str, int]]
    ) -> FrozenSet[Tuple[str, int]]:
        target = node_def(node)
        if target is None:
            return value
        return frozenset(
            (v, d) for v, d in value if v != target
        ) | {(target, node.id)}


@dataclass(frozen=True)
class CfgDataDeps:
    """Node-level data dependence for a lowered program.

    ``deps[n]`` is the set of definition nodes whose value node ``n``
    may read; ``ret_deps`` is the same for the return expression's
    pseudo-use at ``End``.  ``defs`` / ``uses`` are per-node def/use
    summaries shared with the slicer's extraction step.
    """

    deps: Mapping[int, FrozenSet[int]]
    ret_deps: FrozenSet[int]
    defs: Mapping[int, Optional[str]] = field(default_factory=dict)
    uses: Mapping[int, FrozenSet[str]] = field(default_factory=dict)


def data_dependence(lowered) -> CfgDataDeps:
    """Reaching-definitions-based data dependence for every node of
    ``lowered.cfg``, plus the return expression's dependences at exit.

    ``lowered`` is a :class:`repro.ir.lower.Lowered`; for a bare
    statement (``ret is None``) ``ret_deps`` is empty.
    """
    cfg: CFG = lowered.cfg
    solution = solve(cfg, ReachingDefinitions())
    defs: Dict[int, Optional[str]] = {}
    uses: Dict[int, FrozenSet[str]] = {}
    deps: Dict[int, FrozenSet[int]] = {}
    for block in cfg.blocks:
        incoming = solution.block_in[block.id]
        for node_id in block.nodes:
            node = cfg.nodes[node_id]
            used = node_uses(node)
            defs[node_id] = node_def(node)
            uses[node_id] = used
            deps[node_id] = frozenset(
                d for v, d in incoming if v in used
            )
            incoming = solution.problem.transfer(node, incoming)
    ret_deps: FrozenSet[int] = frozenset()
    if lowered.ret is not None:
        ret_vars = free_vars(lowered.ret)
        ret_deps = frozenset(
            d for v, d in solution.block_in[cfg.exit] if v in ret_vars
        )
    return CfgDataDeps(deps=deps, ret_deps=ret_deps, defs=defs, uses=uses)


def first_relevant(
    cfg: CFG, relevant: AbstractSet[int]
) -> Dict[int, FrozenSet[int]]:
    """For every block, the set of possible *first* elements of
    ``relevant ∪ {END}`` met on paths starting at the block's entry.

    This is the weak-postdomination query of the AB theory: a node set
    "provides next observables" iff from every branch node the
    successor blocks' first-sets coincide.  The backward union
    fixpoint starts from ``{END}`` at the exit block; structured
    lowering keeps the exit reachable from every block, so every
    fixpoint set is non-empty.
    """
    local: Dict[int, Optional[int]] = {}
    for block in cfg.blocks:
        found: Optional[int] = None
        for node_id in block.nodes:
            if node_id in relevant:
                found = node_id
                break
        local[block.id] = found
    first: Dict[int, FrozenSet[int]] = {b.id: frozenset() for b in cfg.blocks}
    exit_local = local[cfg.exit]
    first[cfg.exit] = frozenset(
        [END if exit_local is None else exit_local]
    )
    changed = True
    while changed:
        changed = False
        # Reverse creation order approximates reverse topological order
        # on the structured graphs lowering emits, so the backward
        # fixpoint converges in very few sweeps.
        for block in reversed(cfg.blocks):
            if block.id == cfg.exit:
                continue
            if local[block.id] is not None:
                value = frozenset([local[block.id]])
            else:
                acc: set = set()
                for succ in block.succ:
                    acc |= first[succ]
                value = frozenset(acc)
            if value != first[block.id]:
                first[block.id] = value
                changed = True
    return first


def weak_slice_closure(
    cfg: CFG, dd: CfgDataDeps, seeds: AbstractSet[int]
) -> FrozenSet[int]:
    """The least weak slice set containing ``seeds``.

    Alternates two closures to a joint fixpoint:

    * **data dependence** — pull in every definition node a member may
      read (``dd.deps``);
    * **next observables** — recompute :func:`first_relevant` and
      promote any branch/loop node whose successor first-sets
      *differ*.  Comparing successor sets (rather than the size of
      their union) is what keeps the result least: a branch whose two
      arms reach the same ambiguous deeper structure is innocent — the
      deeper branch is promoted, after which the shallower first-sets
      collapse to the same singleton.
    """
    q: set = set(seeds)

    def data_close() -> None:
        stack = list(q)
        while stack:
            n = stack.pop()
            for d in dd.deps.get(n, ()):
                if d not in q:
                    q.add(d)
                    stack.append(d)

    data_close()
    while True:
        first = first_relevant(cfg, q)
        promoted = set()
        for block in cfg.blocks:
            branch = cfg.branch_node_of_block(block.id)
            if branch is None or branch in q:
                continue
            succ_sets = [first[s] for s in block.succ]
            if any(s != succ_sets[0] for s in succ_sets[1:]):
                promoted.add(branch)
        if not promoted:
            return frozenset(q)
        q |= promoted
        data_close()


def conditioning_nodes(lowered) -> Tuple[int, ...]:
    """Nodes that condition the program's output distribution, in
    creation order: hard observes, soft observations, factors, and
    loop headers (the semantics normalizes over terminating runs, so a
    loop condition conditions like an observation)."""
    out: List[int] = []
    for node in lowered.cfg.iter_nodes():
        if node.kind == "loop" or isinstance(
            node.stmt, (Observe, ObserveSample, Factor)
        ):
            out.append(node.id)
    return tuple(out)
