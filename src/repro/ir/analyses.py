"""A generic worklist dataflow fixpoint engine over the CFG.

Analyses describe themselves as a :class:`DataflowProblem` — direction,
lattice join, boundary value, and a per-node transfer function — and
:func:`solve` iterates block-level transfer to a fixpoint, applying the
node transfers in order (forward) or reverse (backward) within each
basic block.  Block-granular iteration is what keeps the engine
near-linear on the long straight-line Table-1 programs: a 3000-
statement chain is a single block and converges in one sweep.

:mod:`repro.semantics.liveness` is the canonical instance; the
dependence analysis uses the CFG's control-dependence machinery
directly (a reachability problem, not a lattice one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generic, List, TypeVar

from .cfg import CFG, Node

__all__ = ["DataflowProblem", "DataflowSolution", "solve"]

L = TypeVar("L")


class DataflowProblem(Generic[L]):
    """A monotone dataflow problem on lattice values of type ``L``.

    Subclasses set ``direction`` (``"forward"`` or ``"backward"``) and
    implement the four hooks.  ``join`` must be monotone and ``transfer``
    distributive for the fixpoint to equal the merge-over-paths solution
    (all our instances are gen/kill problems, which are)."""

    direction: str = "forward"

    def boundary(self) -> L:
        """Value at the entry (forward) or exit (backward) of the CFG."""
        raise NotImplementedError

    def initial(self) -> L:
        """Optimistic initial value for every other block."""
        raise NotImplementedError

    def join(self, a: L, b: L) -> L:
        raise NotImplementedError

    def transfer(self, node: Node, value: L) -> L:
        """Push ``value`` across ``node`` (against the edge direction
        for backward problems)."""
        raise NotImplementedError


@dataclass
class DataflowSolution(Generic[L]):
    """Fixpoint values per block.

    ``block_in[b]`` is the value at the block's *entry* and
    ``block_out[b]`` at its *exit*, in control-flow orientation
    regardless of the analysis direction.  :meth:`node_values` replays
    the transfers of one block to recover per-node values on demand.
    """

    problem: DataflowProblem[L]
    cfg: CFG
    block_in: Dict[int, L]
    block_out: Dict[int, L]

    def entry_value(self) -> L:
        """The value observed at program entry (live-in of the whole
        program for backward liveness)."""
        return self.block_in[self.cfg.entry]

    def node_values(self, block_id: int) -> Dict[int, L]:
        """Per-node values within a block: for a backward problem the
        value *before* each node; for a forward problem the value
        *after* each node."""
        block = self.cfg.blocks[block_id]
        values: Dict[int, L] = {}
        if self.problem.direction == "backward":
            value = self.block_out[block_id]
            for node_id in reversed(block.nodes):
                value = self.problem.transfer(self.cfg.nodes[node_id], value)
                values[node_id] = value
        else:
            value = self.block_in[block_id]
            for node_id in block.nodes:
                value = self.problem.transfer(self.cfg.nodes[node_id], value)
                values[node_id] = value
        return values


def _apply_block(problem: DataflowProblem[L], cfg: CFG, block_id: int, value: L) -> L:
    nodes = cfg.blocks[block_id].nodes
    if problem.direction == "backward":
        nodes = list(reversed(nodes))
    for node_id in nodes:
        value = problem.transfer(cfg.nodes[node_id], value)
    return value


def solve(cfg: CFG, problem: DataflowProblem[L]) -> DataflowSolution[L]:
    """Iterate ``problem`` to its least fixpoint over ``cfg``.

    Standard worklist: seed the boundary block, propagate along flow
    edges (reversed for backward problems), re-queue dependents whose
    input changed.  Termination follows from join-monotonicity and the
    finite lattices our instances use (sets of program variables)."""
    backward = problem.direction == "backward"
    boundary_block = cfg.exit if backward else cfg.entry
    block_in: Dict[int, L] = {}
    block_out: Dict[int, L] = {}
    for block in cfg.blocks:
        block_in[block.id] = problem.initial()
        block_out[block.id] = problem.initial()
    if backward:
        block_out[boundary_block] = problem.boundary()
    else:
        block_in[boundary_block] = problem.boundary()

    worklist: List[int] = [b.id for b in cfg.blocks]
    in_list = set(worklist)
    while worklist:
        block_id = worklist.pop()
        in_list.discard(block_id)
        if backward:
            # out = join over successors' in; in = transfer(out).
            value = block_out[block_id]
            if block_id != boundary_block:
                succs = cfg.blocks[block_id].succ
                if succs:
                    value = block_in[succs[0]]
                    for s in succs[1:]:
                        value = problem.join(value, block_in[s])
                else:
                    value = problem.initial()
                block_out[block_id] = value
            new_in = _apply_block(problem, cfg, block_id, value)
            if new_in != block_in[block_id]:
                block_in[block_id] = new_in
                for p in cfg.blocks[block_id].pred:
                    if p not in in_list:
                        in_list.add(p)
                        worklist.append(p)
        else:
            value = block_in[block_id]
            if block_id != boundary_block:
                preds = cfg.blocks[block_id].pred
                if preds:
                    value = block_out[preds[0]]
                    for p in preds[1:]:
                        value = problem.join(value, block_out[p])
                else:
                    value = problem.initial()
                block_in[block_id] = value
            new_out = _apply_block(problem, cfg, block_id, value)
            if new_out != block_out[block_id]:
                block_out[block_id] = new_out
                for s in cfg.blocks[block_id].succ:
                    if s not in in_list:
                        in_list.add(s)
                        worklist.append(s)
    return DataflowSolution(problem, cfg, block_in, block_out)
