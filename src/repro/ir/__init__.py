"""``repro.ir`` — a shared control-flow-graph intermediate representation.

Amtoft & Banerjee's *A Theory of Slicing for Probabilistic Control-Flow
Graphs* states the paper's observe-dependence slicing over a
probabilistic CFG with explicit control dependence via postdominators.
This package adopts that representation as the common substrate for
the analyses and the compiled execution layer:

* :mod:`repro.ir.cfg` — basic blocks, flow edges, dominator /
  postdominator trees, and control-dependence edges;
* :mod:`repro.ir.lower` — AST→CFG lowering (one node per primitive
  statement; ``observe`` / ``sample`` / ``factor`` are first-class node
  kinds) plus the verified CFG→AST *raising* that the slicer and the
  printer rely on;
* :mod:`repro.ir.analyses` — a generic worklist dataflow fixpoint
  engine that :mod:`repro.semantics.liveness` instantiates, plus the
  CFG-level analyses the Amtoft–Banerjee slicer
  (:mod:`repro.transforms.cfgslice`) consumes: reaching definitions,
  node-level data dependence, weak-slice-set closure, and the
  conditioning-node enumeration.

Consumers: :mod:`repro.analysis.depgraph` reads data/control/observe
dependence off CFG edges, :mod:`repro.transforms.slice` marks CFG nodes
and raises the kept subset back to an AST, and
:mod:`repro.semantics.compiled` compiles each basic block to a Python
closure for the inference hot path.
"""

from .cfg import CFG, BasicBlock, Node
from .lower import Lowered, lower, raise_program, raise_region
from .analyses import (
    END,
    CfgDataDeps,
    DataflowProblem,
    DataflowSolution,
    ReachingDefinitions,
    conditioning_nodes,
    data_dependence,
    first_relevant,
    node_def,
    node_uses,
    solve,
    weak_slice_closure,
)

__all__ = [
    "CFG",
    "BasicBlock",
    "Node",
    "Lowered",
    "lower",
    "raise_program",
    "raise_region",
    "DataflowProblem",
    "DataflowSolution",
    "solve",
    "END",
    "CfgDataDeps",
    "ReachingDefinitions",
    "conditioning_nodes",
    "data_dependence",
    "first_relevant",
    "node_def",
    "node_uses",
    "weak_slice_closure",
]
