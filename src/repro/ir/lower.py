"""AST→CFG lowering and the verified CFG→AST raising.

Lowering walks the AST once, emitting one CFG node per primitive
statement (``skip`` vanishes) and a branch node per ``if`` / ``while``
condition, while recording a *region tree* that mirrors the source
structure.  The region tree is what makes raising trivially correct:
raising a region with every node selected rebuilds the source program
(modulo ``seq`` normalization — flattened blocks, dropped skips), and
raising with a node subset reproduces exactly the paper's ``SLI``
statement rules (Figure 11):

* an unselected primitive node becomes ``skip``;
* an ``if`` whose raised branches are both skips collapses to ``skip``;
* a ``while`` survives iff its *header node* is selected.

Soft observations (``observe(Dist, E)`` / ``factor(E)``) receive their
synthetic observed tokens (``$obs0``, ``$obs1``, ...) here, in node
creation order — which is AST pre-order, the same order
:mod:`repro.analysis.depgraph` and the slicer historically used, so
token numbering is consistent across every consumer of the IR.

``lower`` is memoized by object identity: the pipeline lowers a
program once and the dependence analysis, the slicer, liveness, and
the compiled executor all share the result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..core.ast import (
    Assign,
    Block,
    Decl,
    Expr,
    Factor,
    If,
    Observe,
    ObserveSample,
    Program,
    Sample,
    SKIP,
    Skip,
    Stmt,
    While,
    is_skip,
    seq,
)
from .cfg import CFG

__all__ = [
    "SOFT_OBS_PREFIX",
    "Leaf",
    "Seq",
    "IfRegion",
    "WhileRegion",
    "Region",
    "Lowered",
    "lower",
    "raise_region",
    "raise_program",
    "clear_lower_cache",
]

#: Prefix of the synthetic observed tokens for soft observations.
#: (Re-exported by :mod:`repro.analysis.depgraph` for compatibility.)
SOFT_OBS_PREFIX = "$obs"


# ---------------------------------------------------------------------------
# Region tree
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Leaf:
    """A primitive statement; ``node`` is None for source ``skip``."""

    stmt: Stmt
    node: Optional[int]


@dataclass(frozen=True)
class Seq:
    """Sequential composition (mirrors a :class:`Block`)."""

    children: Tuple["Region", ...]


@dataclass(frozen=True)
class IfRegion:
    """A conditional; ``node`` is the branch node carrying the condition."""

    cond: Expr
    node: int
    then_region: "Region"
    else_region: "Region"


@dataclass(frozen=True)
class WhileRegion:
    """A loop; ``node`` is the header node carrying the condition."""

    cond: Expr
    node: int
    body: "Region"


Region = Union[Leaf, Seq, IfRegion, WhileRegion]


# ---------------------------------------------------------------------------
# Lowered program
# ---------------------------------------------------------------------------


@dataclass
class Lowered:
    """The result of lowering a program (or bare statement).

    ``tokens`` maps soft-observation node ids to their ``$obsN`` token;
    ``source`` keeps the lowered object alive so the identity-keyed
    cache stays sound.
    """

    cfg: CFG
    root: Region
    source: Union[Program, Stmt]
    ret: Optional[Expr]
    tokens: Dict[int, str] = field(default_factory=dict)

    @property
    def body(self) -> Stmt:
        return (
            self.source.body if isinstance(self.source, Program) else self.source
        )


class _Lowerer:
    def __init__(self) -> None:
        self.cfg = CFG()
        self.tokens: Dict[int, str] = {}
        self._soft_counter = 0

    def lower(self, stmt: Stmt, block: int) -> Tuple[Region, int]:
        """Lower ``stmt`` starting in ``block``; returns the region and
        the block where control continues."""
        if isinstance(stmt, Skip):
            return Leaf(stmt, None), block
        if isinstance(stmt, Block):
            children: List[Region] = []
            for s in stmt.stmts:
                region, block = self.lower(s, block)
                children.append(region)
            return Seq(tuple(children)), block
        if isinstance(stmt, If):
            branch = self.cfg.new_node("branch", block, cond=stmt.cond)
            then_entry = self.cfg.new_block()
            self.cfg.add_edge(block, then_entry)  # first successor: true edge
            then_region, then_exit = self.lower(stmt.then_branch, then_entry)
            else_entry = self.cfg.new_block()
            self.cfg.add_edge(block, else_entry)
            else_region, else_exit = self.lower(stmt.else_branch, else_entry)
            join = self.cfg.new_block()
            self.cfg.add_edge(then_exit, join)
            self.cfg.add_edge(else_exit, join)
            return IfRegion(stmt.cond, branch, then_region, else_region), join
        if isinstance(stmt, While):
            header = self.cfg.new_block()
            self.cfg.add_edge(block, header)
            head = self.cfg.new_node("loop", header, cond=stmt.cond)
            body_entry = self.cfg.new_block()
            self.cfg.add_edge(header, body_entry)  # first successor: true edge
            body_region, body_exit = self.lower(stmt.body, body_entry)
            self.cfg.add_edge(body_exit, header)  # back edge
            after = self.cfg.new_block()
            self.cfg.add_edge(header, after)
            return WhileRegion(stmt.cond, head, body_region), after
        # Primitive statement.
        node = self.cfg.new_node("stmt", block, stmt=stmt)
        if isinstance(stmt, (ObserveSample, Factor)):
            self.tokens[node] = f"{SOFT_OBS_PREFIX}{self._soft_counter}"
            self._soft_counter += 1
        elif not isinstance(stmt, (Decl, Assign, Sample, Observe)):
            raise TypeError(f"not a statement: {stmt!r}")
        return Leaf(stmt, node), block


#: Identity-keyed lowering cache.  Strong references to the source keep
#: ``id`` values from being reused while an entry is alive.
_LOWER_CACHE: Dict[int, Tuple[object, Lowered]] = {}
_LOWER_CACHE_MAX = 4096


def clear_lower_cache() -> None:
    """Drop all memoized lowerings (mainly for tests)."""
    _LOWER_CACHE.clear()


def lower(source: Union[Program, Stmt]) -> Lowered:
    """Lower a program or statement to a :class:`Lowered` CFG.

    Memoized by object identity — repeated calls on the same AST (the
    pipeline analyzing then slicing the same preprocessed program, the
    exact engine re-querying liveness per loop iteration) share one IR.
    """
    key = id(source)
    hit = _LOWER_CACHE.get(key)
    if hit is not None and hit[0] is source:
        return hit[1]
    from ..obs.recorder import current_recorder

    with current_recorder().span("ir.lower") as sp:
        body = source.body if isinstance(source, Program) else source
        ret = source.ret if isinstance(source, Program) else None
        lo = _Lowerer()
        root, last = lo.lower(body, lo.cfg.entry)
        exit_block = lo.cfg.new_block()
        lo.cfg.add_edge(last, exit_block)
        lo.cfg.seal(exit_block)
        result = Lowered(lo.cfg, root, source, ret, lo.tokens)
        sp.set(n_nodes=len(lo.cfg.nodes), n_blocks=len(lo.cfg.blocks))
    if len(_LOWER_CACHE) >= _LOWER_CACHE_MAX:
        _LOWER_CACHE.clear()
    _LOWER_CACHE[key] = (source, result)
    return result


# ---------------------------------------------------------------------------
# Raising
# ---------------------------------------------------------------------------


def raise_region(region: Region, selected: Callable[[int], bool]) -> Stmt:
    """Raise a region back to an AST, keeping exactly the nodes for
    which ``selected`` holds (Figure 11's SLI statement rules).

    ``selected`` is consulted for every primitive node and every loop
    header; ``if`` nodes are structural — the conditional survives iff
    either raised branch does.  With ``selected = lambda n: True`` this
    reconstructs the source program up to ``seq`` normalization.
    """
    if isinstance(region, Leaf):
        if region.node is None:
            return SKIP
        return region.stmt if selected(region.node) else SKIP
    if isinstance(region, Seq):
        return seq(*(raise_region(child, selected) for child in region.children))
    if isinstance(region, IfRegion):
        then_branch = raise_region(region.then_region, selected)
        else_branch = raise_region(region.else_region, selected)
        if is_skip(then_branch) and is_skip(else_branch):
            return SKIP
        return If(region.cond, then_branch, else_branch)
    if isinstance(region, WhileRegion):
        if selected(region.node):
            return While(region.cond, raise_region(region.body, selected))
        return SKIP
    raise TypeError(f"not a region: {region!r}")


def raise_program(
    lowered: Lowered, selected: Callable[[int], bool] = lambda n: True
) -> Program:
    """Raise a lowered *program* back to a :class:`Program`."""
    if lowered.ret is None:
        raise TypeError("raise_program requires a lowered Program, not a Stmt")
    return Program(raise_region(lowered.root, selected), lowered.ret)
