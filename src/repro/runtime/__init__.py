"""The parallel inference runtime.

Two pieces, usable separately or together:

* :class:`~repro.runtime.cache.ProgramCache` — a content-addressed
  cache (in-memory, optionally on-disk) for the expensive per-program
  setup artifacts: :class:`~repro.transforms.pipeline.SliceResult`\\ s
  and compiled executors, keyed by
  :func:`~repro.core.fingerprint.program_fingerprint`.
* :class:`~repro.runtime.parallel.ParallelRunner` — fans an engine's
  sampling work out across ``multiprocessing`` workers along the shape
  the engine declares (``Engine.parallel_unit``: chains, i.i.d. draws,
  or particle islands) and merges the per-worker results.

``n_workers=1`` always takes the engine's own sequential ``infer``
path, so single-worker output is bit-identical to running the engine
directly; ``n_workers=k`` is reproducible under a fixed master seed
(per-worker seeds derive deterministically from it).
"""

from ..core.fingerprint import FINGERPRINT_VERSION, program_fingerprint
from .cache import CacheStats, ProgramCache
from .parallel import ParallelRunner, numpy_generator, spawn_seeds

__all__ = [
    "FINGERPRINT_VERSION",
    "program_fingerprint",
    "CacheStats",
    "ProgramCache",
    "ParallelRunner",
    "numpy_generator",
    "spawn_seeds",
]
