"""Content-addressed caching of per-program setup artifacts.

Repeated inference on the same program used to re-pay the whole setup
bill on every invocation: the SLI pipeline (seconds on the paper-scale
Chess model) and the executor compilation.  Both artifacts are pure
functions of the program's canonical text plus the transform options,
so :class:`ProgramCache` keys them by
:func:`repro.core.fingerprint.program_fingerprint` — structurally
equal programs share entries even across parse→print round trips and
across processes (with ``cache_dir`` set).

The cache is wired in at two levels:

* :func:`repro.transforms.pipeline.sli` accepts ``cache=`` and calls
  the duck-typed ``get_slice`` / ``put_slice`` pair (the pipeline does
  not import this module, so the dependency points runtime → transforms
  only);
* :meth:`ProgramCache.compiled` fronts
  :func:`repro.semantics.compiled.compile_program`, adding the on-disk
  layer to its in-memory fingerprint cache.

On-disk entries are pickles written atomically (temp file + rename)
under ``<cache_dir>/<fingerprint>.<kind>.pkl``; unreadable or corrupt
entries are treated as misses and rewritten.  The fingerprint version
is part of every key, so format changes self-invalidate.

Concurrency: ``repro.serve`` runs jobs on threads, so one cache is
shared by concurrent readers and writers.  All in-memory LRU state is
guarded by one re-entrant mutex (an ``OrderedDict.move_to_end`` racing
a ``popitem`` corrupts the order, or dies with ``KeyError``), and the
expensive producers (:meth:`ProgramCache.slice`,
:meth:`ProgramCache.compiled`) are *single-flight*: a per-fingerprint
lock makes the second of two in-flight requests for the same artifact
wait for the first and then take the cache hit, instead of slicing or
compiling the same program twice.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, Optional

from ..core.ast import Program
from ..core.fingerprint import program_fingerprint
from ..obs.recorder import current_recorder

if TYPE_CHECKING:
    from ..semantics.compiled import CompiledProgram
    from ..transforms.pipeline import SliceResult

__all__ = ["CacheStats", "ProgramCache"]


@dataclass
class CacheStats:
    """Hit/miss counters, split by artifact kind and storage layer."""

    slice_hits: int = 0
    slice_misses: int = 0
    compile_hits: int = 0
    compile_misses: int = 0
    disk_hits: int = 0
    #: Disk entries that existed but could not be unpickled (corrupt or
    #: truncated); each is treated as a miss and the file is deleted.
    disk_load_failures: int = 0
    #: In-memory LRU evictions.
    evictions: int = 0
    #: Requests that arrived while another thread was already producing
    #: the same artifact and were served by waiting for it instead of
    #: recomputing (the single-flight path).
    flight_waits: int = 0

    def reset(self) -> None:
        self.slice_hits = 0
        self.slice_misses = 0
        self.compile_hits = 0
        self.compile_misses = 0
        self.disk_hits = 0
        self.disk_load_failures = 0
        self.evictions = 0
        self.flight_waits = 0


class ProgramCache:
    """In-memory (bounded, LRU) + optional on-disk artifact cache.

    ``cache_dir=None`` keeps everything in memory.  With a directory,
    every artifact is also persisted, so a fresh process (or a
    ``multiprocessing`` worker) warm-starts from disk.
    """

    def __init__(
        self, cache_dir: Optional[str] = None, max_entries: int = 256
    ) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.cache_dir = cache_dir
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._memory: OrderedDict[str, object] = OrderedDict()
        #: Guards ``_memory``, ``stats``, and ``_flights``; re-entrant
        #: so locked paths may call other locked paths.
        self._mutex = threading.RLock()
        #: Per-fingerprint producer locks for the single-flight paths.
        self._flights: Dict[str, threading.Lock] = {}
        if cache_dir is not None:
            os.makedirs(cache_dir, exist_ok=True)

    # -- single-flight --------------------------------------------------------

    @contextmanager
    def _flight(self, key: str) -> Iterator[None]:
        """Serialize producers of the artifact named ``key``.

        The second thread to enter blocks until the first leaves; the
        caller re-checks the cache after acquiring, so the waiter takes
        a hit instead of recomputing.  Lock objects are created on
        demand and dropped once nobody holds or waits on them.
        """
        with self._mutex:
            lock = self._flights.get(key)
            if lock is None:
                lock = self._flights[key] = threading.Lock()
        waited = not lock.acquire(blocking=False)
        if waited:
            lock.acquire()
            with self._mutex:
                self.stats.flight_waits += 1
        try:
            yield
        finally:
            lock.release()
            with self._mutex:
                if not lock.locked() and self._flights.get(key) is lock:
                    del self._flights[key]

    # -- generic keyed storage ------------------------------------------------

    def _get(self, key: str, kind: str) -> Optional[object]:
        with self._mutex:
            hit = self._memory.get(key)
            if hit is not None:
                self._memory.move_to_end(key)
                return hit
        if self.cache_dir is None:
            return None
        path = os.path.join(self.cache_dir, f"{key}.{kind}.pkl")
        try:
            f = open(path, "rb")
        except OSError:
            return None
        try:
            with f:
                value = pickle.load(f)
        except Exception:
            # The entry exists but cannot be loaded (corrupt/truncated
            # pickle, or a stale class the unpickler no longer finds):
            # count it, drop the bad file, and treat it as a miss so
            # the caller recomputes and rewrites a good entry.
            with self._mutex:
                self.stats.disk_load_failures += 1
            current_recorder().counter("cache.disk_corrupt")
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        with self._mutex:
            self.stats.disk_hits += 1
        current_recorder().counter("cache.disk_read")
        self._remember(key, value)
        return value

    def _put(self, key: str, kind: str, value: object) -> None:
        self._remember(key, value)
        if self.cache_dir is None:
            return
        path = os.path.join(self.cache_dir, f"{key}.{kind}.pkl")
        fd, tmp = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                pickle.dump(value, f, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def _remember(self, key: str, value: object) -> None:
        evicted = 0
        with self._mutex:
            self._memory[key] = value
            self._memory.move_to_end(key)
            while len(self._memory) > self.max_entries:
                self._memory.popitem(last=False)
                self.stats.evictions += 1
                evicted += 1
        for _ in range(evicted):
            current_recorder().counter("cache.evict")

    def clear(self, disk: bool = False) -> None:
        """Drop the in-memory layer (and the on-disk one if asked)."""
        with self._mutex:
            self._memory.clear()
        if disk and self.cache_dir is not None:
            for name in os.listdir(self.cache_dir):
                if name.endswith(".pkl"):
                    try:
                        os.unlink(os.path.join(self.cache_dir, name))
                    except OSError:
                        pass

    def __len__(self) -> int:
        with self._mutex:
            return len(self._memory)

    # -- SliceResult protocol (used by transforms.pipeline.sli) ---------------

    def get_slice(
        self, program: Program, options: Dict[str, object]
    ) -> "Optional[SliceResult]":
        """Cached :class:`SliceResult` for ``program`` under the given
        pipeline options, or ``None``.

        ``sli`` passes ``{"pipeline": <PassManager.pipeline_key>}`` —
        the rendered pass signatures — so the entry is keyed on
        ``(program, pipeline config)`` uniformly and any pass or
        pass-parameter change misses instead of aliasing.
        """
        key = program_fingerprint(program, kind="slice", **options)
        hit = self._get(key, "slice")
        if hit is None:
            with self._mutex:
                self.stats.slice_misses += 1
            current_recorder().counter("cache.slice.miss")
            return None
        with self._mutex:
            self.stats.slice_hits += 1
        current_recorder().counter("cache.slice.hit")
        return hit  # type: ignore[return-value]

    def put_slice(
        self,
        program: Program,
        options: Dict[str, object],
        result: "SliceResult",
    ) -> None:
        key = program_fingerprint(program, kind="slice", **options)
        self._put(key, "slice", result)

    def slice(self, program: Program, **options: object) -> "SliceResult":
        """The SLI pipeline through this cache: a cached result when the
        fingerprint matches, computed (and stored) otherwise.

        Single-flight: concurrent calls for the same ``(program,
        options)`` run the pipeline once — the rest block on the
        producer's flight lock and then take the ``get_slice`` hit
        inside :func:`~repro.transforms.pipeline.sli`.
        """
        from ..transforms.pipeline import sli

        flight_key = program_fingerprint(program, kind="slice-flight", **options)
        with self._flight(flight_key):
            return sli(program, cache=self, **options)  # type: ignore[arg-type]

    # -- compiled executors ---------------------------------------------------

    def compiled(self, program: Program) -> "CompiledProgram":
        """The compiled executor for ``program``, through this cache
        (and through :func:`compile_program`'s own in-memory layers).

        Single-flight: two in-flight jobs for the same fingerprint
        compile once; the loser of the race waits and takes the hit.
        """
        from ..semantics.compiled import compile_program

        key = program_fingerprint(program, kind="compiled")
        hit = self._get(key, "compiled")
        if hit is not None:
            with self._mutex:
                self.stats.compile_hits += 1
            current_recorder().counter("cache.compile.hit")
            return hit  # type: ignore[return-value]
        with self._flight(key):
            hit = self._get(key, "compiled")
            if hit is not None:
                with self._mutex:
                    self.stats.compile_hits += 1
                current_recorder().counter("cache.compile.hit")
                return hit  # type: ignore[return-value]
            with self._mutex:
                self.stats.compile_misses += 1
            current_recorder().counter("cache.compile.miss")
            compiled = compile_program(program)
            self._put(key, "compiled", compiled)
            return compiled
