"""Multi-process fan-out of embarrassingly parallel sampling work.

Every sampling engine draws in one sequential Python loop; MCMC
chains, i.i.d. importance/rejection draws, and SMC particle islands
are independent, so :class:`ParallelRunner` shards them across
``multiprocessing`` workers along the shape the engine itself declares
(:attr:`repro.inference.base.Engine.parallel_unit` plus the
``shard``/``merge`` protocol) instead of re-implementing fan-out per
engine.

Determinism discipline:

* ``n_workers=1`` never shards: the engine's own ``infer`` runs in
  this process, so the output is bit-identical to calling the engine
  directly.
* ``n_workers=k`` derives one seed per worker from the engine's master
  seed with :func:`spawn_seeds` (SHA-256 of ``(master, index)`` — an
  explicit, splittable seed stream in the spirit of NumPy's
  ``SeedSequence``, built on :mod:`hashlib` since :mod:`random` has no
  native equivalent).  Shard order is preserved through ``Pool.map``
  and the merge, so a fixed master seed reproduces the merged result
  exactly, run after run.

Workers receive ``(engine_shard, program)`` by pickle.  The default
start method is ``fork`` where available (cheap on Linux; workers
inherit warm caches) falling back to ``spawn``; ``backend="inline"``
runs the shards sequentially in-process — same shard/merge code path,
no processes — which is what the determinism tests and 1-core
environments use.
"""

from __future__ import annotations

import copy
import hashlib
import multiprocessing
import os
import time
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.ast import Program
from ..inference.base import (
    Engine,
    InferenceCancelled,
    InferenceError,
    InferenceResult,
)
from ..obs.recorder import TraceRecorder, current_recorder, use_recorder

if TYPE_CHECKING:
    from ..transforms.factorize import FactorSet

__all__ = ["ParallelRunner", "numpy_generator", "spawn_seeds"]

_BACKENDS = ("fork", "spawn", "forkserver", "inline")


def spawn_seeds(master_seed: int, n: int) -> List[int]:
    """``n`` independent 63-bit seeds derived from ``master_seed``.

    Deterministic (pure function of ``(master_seed, index)``) and
    collision-resistant across both arguments, so worker streams never
    alias each other or the master stream.
    """
    seeds = []
    for i in range(n):
        digest = hashlib.sha256(
            f"repro-seed-stream\x00{master_seed}\x00{i}".encode()
        ).digest()
        seeds.append(int.from_bytes(digest[:8], "big") >> 1)
    return seeds


def numpy_generator(master_seed: Optional[int], *path: object) -> np.random.Generator:
    """A ``numpy.random.Generator`` derived from the same SHA-256 seed
    stream as :func:`spawn_seeds`.

    ``path`` components keep independent consumers (the array backend's
    engines, per-shard lanes) off each other's streams; the whole
    derivation is a pure function of ``(master_seed, *path)``, so the
    ``n_workers=1`` reproducibility discipline extends to batched
    draws.  A ``None`` master seed yields OS entropy, matching the
    scalar engines' unseeded behaviour.
    """
    if master_seed is None:
        return np.random.default_rng()
    digest = hashlib.sha256(
        ("repro-numpy-stream\x00" + "\x00".join(str(p) for p in (master_seed, *path))).encode()
    ).digest()
    return np.random.default_rng(int.from_bytes(digest[:16], "big"))


def _infer_shard(
    payload: Tuple[Engine, Program, int, bool, Optional[dict], Optional[object]]
) -> Tuple[InferenceResult, Optional[dict]]:
    """Top-level worker entry point (must be picklable by reference).

    With ``capture`` set, the shard runs under its own
    :class:`TraceRecorder` whose whole buffer (the ``worker`` span tree
    plus any engine progress metrics and counters) ships back as a
    plain-dict payload for the parent to merge — the same code path
    regardless of start method, so fork/spawn/forkserver/inline all
    produce identical span structure.

    ``live_spec`` (the parent :class:`~repro.obs.live.SnapshotRecorder`'s
    ``worker_spec()``) upgrades the worker recorder to a
    ``SnapshotRecorder`` wrapping that same ``TraceRecorder`` — the
    trace half of the payload stays identical — and adds the worker's
    final registry state under the payload's ``live`` key.  ``sink``
    (a manager queue, or an in-process adapter on the inline backend)
    additionally streams each published snapshot home as
    ``(index, snapshot_dict)`` while the shard is still running.
    """
    engine, program, index, capture, live_spec, sink = payload
    if not capture:
        return engine.infer(program), None
    trace = TraceRecorder()
    recorder: object = trace
    if live_spec is not None:
        from ..obs.live import SnapshotRecorder

        subscribers = []
        if sink is not None:

            def ship(snapshot: object) -> None:
                try:
                    sink.put((index, snapshot.to_dict()))  # type: ignore[union-attr]
                except Exception:
                    pass  # a dead parent queue must not kill the shard

            subscribers.append(ship)
        recorder = SnapshotRecorder(
            inner=trace,
            worker=index,
            subscribers=subscribers,
            health=None,  # monitors run on the parent, over the merge
            **live_spec,
        )
    with use_recorder(recorder):
        with trace.span(
            "worker", worker=index, engine=engine.name, pid=os.getpid()
        ):
            result = engine.infer(program)
    if live_spec is not None:
        recorder.publish()  # type: ignore[union-attr]
    return result, recorder.to_payload()  # type: ignore[union-attr]


class _InlineSink:
    """Queue stand-in for the inline backend: snapshots go straight to
    the parent recorder, synchronously and deterministically."""

    def __init__(self, recorder: object) -> None:
        self.recorder = recorder

    def put(self, item: Tuple[int, dict]) -> None:
        _, snapshot = item
        self.recorder.ingest_worker_snapshot(snapshot)  # type: ignore[attr-defined]


def _recombine(
    factor_set: "FactorSet", parts: Sequence[InferenceResult]
) -> InferenceResult:
    """Exact product recombination of per-factor sampling results.

    Factor variable sets are disjoint, so the i-th joint sample is the
    original return expression evaluated over the union of the i-th
    per-factor assignments, and (when any factor is weighted) the i-th
    joint weight is the product of the per-factor weights.
    """
    if len(parts) != len(factor_set.factors):
        raise InferenceError(
            f"expected {len(factor_set.factors)} factor results, "
            f"got {len(parts)}"
        )
    for part in parts:
        if part.exact is not None or part.moments is not None:
            raise InferenceError(
                "factored recombination requires sampling results"
            )
    n = min(len(part.samples) for part in parts)
    merged = InferenceResult()
    has_weights = any(part.weights is not None for part in parts)
    if has_weights:
        merged.weights = []
    for i in range(n):
        values = [part.samples[i] for part in parts]
        merged.samples.append(factor_set.recombine(values))
        if has_weights:
            w = 1.0
            for part in parts:
                if part.weights is not None:
                    w *= part.weights[i]
            assert merged.weights is not None
            merged.weights.append(w)
    for part in parts:
        merged.statements_executed += part.statements_executed
        merged.n_proposals += part.n_proposals
        merged.n_accepted += part.n_accepted
        merged.elapsed_seconds += part.elapsed_seconds
    return merged


def _default_workers() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


class ParallelRunner:
    """Run an engine's inference with its work fanned out over
    ``n_workers`` processes.

    ``backend`` is one of ``"fork"``, ``"spawn"``, ``"forkserver"``,
    or ``"inline"``; ``None`` picks ``fork`` when the platform offers
    it, else ``spawn``.  Engines that cannot shard
    (``parallel_unit == "none"``) run sequentially.  Per-shard wall
    budgets (``time_budget``) apply to each worker independently.
    """

    def __init__(
        self,
        n_workers: Optional[int] = None,
        backend: Optional[str] = None,
        cache: Optional[object] = None,
    ) -> None:
        if backend is not None and backend not in _BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {_BACKENDS}"
            )
        self.n_workers = _default_workers() if n_workers is None else n_workers
        if self.n_workers <= 0:
            raise ValueError("n_workers must be positive")
        if backend is None:
            methods = multiprocessing.get_all_start_methods()
            backend = "fork" if "fork" in methods else "spawn"
        self.backend = backend
        #: Optional :class:`repro.runtime.cache.ProgramCache`; when set
        #: and the engine runs compiled, the executor is compiled (or
        #: loaded) through the cache before forking, so every worker
        #: inherits the warm in-memory compilation instead of redoing it.
        self.cache = cache

    def run(
        self,
        engine: Engine,
        program: Program,
        cancel: Optional[Callable[[], bool]] = None,
    ) -> InferenceResult:
        """``engine.infer(program)``, parallelized when possible.

        The merged result's ``elapsed_seconds`` is the fan-out's wall
        time (workers' own clocks overlap and would double-count).

        ``cancel`` — optional zero-arg hook polled between shards
        (inline) or while the pool drains; when it turns true the
        fan-out stops (pool terminated) and :class:`InferenceCancelled`
        is raised.  This is the cooperative cancellation surface
        ``repro.serve`` uses for request deadlines; sequential
        single-worker runs check it once up front (mid-run cancellation
        there comes from the caller's recorder subscriber instead).
        """
        if cancel is not None and cancel():
            raise InferenceCancelled("run cancelled before it started")
        if self.cache is not None and getattr(engine, "compiled", False):
            self.cache.compiled(program)
        if self.n_workers <= 1 or engine.parallel_unit == "none":
            return engine.infer(program)
        seeds = spawn_seeds(getattr(engine, "seed", 0), self.n_workers)
        shards = engine.shard(self.n_workers, seeds)
        if len(shards) <= 1:
            return engine.infer(program)
        recorder = current_recorder()
        with recorder.span(
            "parallel.run",
            engine=engine.name,
            n_workers=len(shards),
            backend=self.backend,
            unit=engine.parallel_unit,
        ):
            start = time.perf_counter()
            pairs = self._map(shards, program, cancel=cancel)
            for _, payload in pairs:
                if payload is not None:
                    recorder.merge_child(payload)
            merged = engine.merge([result for result, _ in pairs])
            merged.elapsed_seconds = time.perf_counter() - start
        return merged

    def run_factored(
        self,
        engine: Engine,
        factor_set: "FactorSet",
        cancel: Optional[Callable[[], bool]] = None,
    ) -> InferenceResult:
        """Shard-by-factor inference: run ``engine`` independently on
        every factor of ``factor_set`` and recombine the per-factor
        sub-posteriors into a joint result.

        Each factor gets a clone of the engine with its own seed from
        the master's :func:`spawn_seeds` stream, so the result is
        deterministic in the engine's seed.  Recombination is the exact
        product over disjoint variable sets: per-index factor outputs
        join into one assignment, the original return expression is
        evaluated on it, and importance weights multiply (both the
        proposal and the target factorize across factors, so the
        product weight is the joint weight).  Joint samples are capped
        at the smallest per-factor sample count; work counters sum;
        cross-factor chain diagnostics are unavailable (``chains`` is
        ``None``) because no worker ever sees the joint state.

        Evidence-only factors still run — they carry the conditioning
        (a blocked factor must surface the same ``InferenceError`` the
        monolithic run would) — but their samples join as the empty
        assignment.
        """
        if cancel is not None and cancel():
            raise InferenceCancelled("run cancelled before it started")
        factors = factor_set.factors
        if not factors:
            # Everything was dropped (constant return): a point mass.
            return InferenceResult(samples=[factor_set.recombine([])])
        if self.cache is not None and getattr(engine, "compiled", False):
            for factor in factors:
                self.cache.compiled(factor.program)
        seeds = spawn_seeds(getattr(engine, "seed", 0), len(factors))
        clones: List[Engine] = []
        for seed in seeds:
            clone = copy.copy(engine)
            if hasattr(clone, "seed"):
                clone.seed = seed  # type: ignore[attr-defined]
            clones.append(clone)
        tasks = [
            (clone, factor.program)
            for clone, factor in zip(clones, factors)
        ]
        recorder = current_recorder()
        with recorder.span(
            "parallel.run_factored",
            engine=engine.name,
            n_factors=len(factors),
            backend=self.backend,
        ):
            start = time.perf_counter()
            pairs = self._map_tasks(
                tasks, force_inline=self.n_workers <= 1, cancel=cancel
            )
            for _, payload in pairs:
                if payload is not None:
                    recorder.merge_child(payload)
            merged = _recombine(factor_set, [result for result, _ in pairs])
            merged.elapsed_seconds = time.perf_counter() - start
        return merged

    def _map(
        self,
        shards: Sequence[Engine],
        program: Program,
        cancel: Optional[Callable[[], bool]] = None,
    ) -> List[Tuple[InferenceResult, Optional[dict]]]:
        return self._map_tasks(
            [(shard, program) for shard in shards], cancel=cancel
        )

    def _map_tasks(
        self,
        tasks: Sequence[Tuple[Engine, Program]],
        force_inline: bool = False,
        cancel: Optional[Callable[[], bool]] = None,
    ) -> List[Tuple[InferenceResult, Optional[dict]]]:
        recorder = current_recorder()
        capture = recorder.enabled
        inline = self.backend == "inline" or force_inline
        # A SnapshotRecorder parent asks workers to run live telemetry
        # too; when it also has live consumers (watch, NDJSON stream),
        # in-flight snapshots come home through a sink.
        spec_fn = getattr(recorder, "worker_spec", None)
        live_spec = spec_fn() if capture and callable(spec_fn) else None
        manager = None
        sink: Optional[object] = None
        if live_spec is not None and getattr(recorder, "wants_live", False):
            if inline:
                sink = _InlineSink(recorder)
            else:
                ctx = multiprocessing.get_context(self.backend)
                manager = ctx.Manager()
                sink = manager.Queue()
        payloads = [
            (engine, program, i, capture, live_spec, sink)
            for i, (engine, program) in enumerate(tasks)
        ]
        try:
            if inline:
                results = []
                for p in payloads:
                    if cancel is not None and cancel():
                        raise InferenceCancelled(
                            f"cancelled after {len(results)} of "
                            f"{len(payloads)} shards"
                        )
                    results.append(_infer_shard(p))
                return results
            ctx = multiprocessing.get_context(self.backend)
            processes = min(len(payloads), max(1, self.n_workers))
            with ctx.Pool(processes=processes) as pool:
                if sink is None and cancel is None:
                    return pool.map(_infer_shard, payloads, chunksize=1)
                handle = pool.map_async(_infer_shard, payloads, chunksize=1)
                while not handle.ready():
                    if cancel is not None and cancel():
                        pool.terminate()
                        raise InferenceCancelled(
                            "cancelled while the worker pool was busy"
                        )
                    if sink is not None:
                        self._drain(sink, recorder)
                    handle.wait(0.05)
                if sink is not None:
                    self._drain(sink, recorder)
                return handle.get()
        finally:
            if manager is not None:
                manager.shutdown()

    @staticmethod
    def _drain(sink: object, recorder: object) -> None:
        """Forward queued in-flight worker snapshots to the parent
        recorder's subscribers."""
        import queue as _queue

        while True:
            try:
                _, snapshot = sink.get_nowait()  # type: ignore[attr-defined]
            except (_queue.Empty, OSError, EOFError):
                return
            recorder.ingest_worker_snapshot(snapshot)  # type: ignore[attr-defined]

    def __repr__(self) -> str:
        return (
            f"ParallelRunner(n_workers={self.n_workers}, "
            f"backend={self.backend!r})"
        )
