"""Common infrastructure for the inference engines."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import random
from typing import TYPE_CHECKING

from ..core.ast import Program
from ..semantics.distribution import FiniteDist
from ..semantics.executor import ExecutorOptions, RunResult, run_program
from ..semantics.values import Value

if TYPE_CHECKING:
    from ..semantics.trace import Trace

__all__ = [
    "InferenceError",
    "UnsupportedProgramError",
    "InferenceTimeout",
    "InferenceCancelled",
    "InitializationError",
    "InferenceResult",
    "Engine",
    "split_evenly",
]


def split_evenly(total: int, n_shards: int) -> List[int]:
    """Split ``total`` units of work into ``n_shards`` near-equal parts
    (earlier shards take the remainder); parts may be zero."""
    if n_shards <= 0:
        raise ValueError("n_shards must be positive")
    base, rem = divmod(total, n_shards)
    return [base + (1 if i < rem else 0) for i in range(n_shards)]


class InferenceError(RuntimeError):
    """Generic inference failure."""


class UnsupportedProgramError(InferenceError):
    """The engine cannot handle a feature of this program (e.g. the
    Church-like engine and the Gamma distribution, or rejection
    sampling with soft conditioning)."""


class InferenceTimeout(InferenceError):
    """The engine exceeded its wall-clock budget — this is how the
    paper's 'Church does not terminate on the original program' rows
    manifest in our harness."""


class InferenceCancelled(InferenceError):
    """The run was cancelled cooperatively before it finished.

    Raised by the :class:`repro.runtime.parallel.ParallelRunner` when
    its ``cancel`` hook turns true mid-run, and by ``repro.serve``'s
    deadline enforcement (a snapshot subscriber raises it inside the
    engine's thread).  Engines themselves never raise it.
    """


class InitializationError(InferenceError):
    """No trace satisfying the hard observations was found."""


@dataclass
class InferenceResult:
    """Output of an inference engine.

    For samplers, ``samples`` holds the (post-burn-in) return values
    and ``weights`` optional importance weights.  The exact engine
    sets ``exact`` directly.  ``statements_executed`` is a
    deterministic work measure used by the benchmark harness alongside
    wall time.

    Results produced by the parallel runtime (:mod:`repro.runtime`)
    additionally carry ``chains``: the per-worker sample lists, in
    worker order, for cross-chain diagnostics (split-R̂ / ESS over the
    *independent* chains rather than the pooled stream).
    """

    samples: List[Value] = field(default_factory=list)
    weights: Optional[List[float]] = None
    exact: Optional[FiniteDist] = None
    #: Continuous engines (Gaussian EP) report posterior (mean, variance).
    moments: Optional[tuple] = None
    elapsed_seconds: float = 0.0
    statements_executed: int = 0
    n_proposals: int = 0
    n_accepted: int = 0
    #: Per-worker sample lists when this result was merged from a
    #: multi-chain parallel run (``None`` for sequential results).
    chains: Optional[List[List[Value]]] = None
    #: Number of distinct root ancestors among the final particles of
    #: an SMC run (``None`` for non-particle engines).  Resampling
    #: collapses genealogies, so this — not the particle count — bounds
    #: the number of independent draws the population represents.
    lineages: Optional[int] = None
    #: :class:`repro.obs.health.HealthReport` attached by run drivers
    #: (CLI, harness, parallel runner) when the run executed under a
    #: live :class:`~repro.obs.live.SnapshotRecorder`; ``None``
    #: otherwise.  Typed loosely to keep this module free of any
    #: obs-layer import.
    health: Optional[object] = field(default=None, repr=False, compare=False)
    #: Memoized ``(len(samples), mean, variance)`` reduction — the
    #: benchmark reporting calls ``mean()``/``variance()`` repeatedly
    #: and each was an O(n) Python loop per call.  Keyed by the sample
    #: count so appends during inference invalidate it naturally.
    _reductions: Optional[tuple] = field(
        default=None, repr=False, compare=False
    )

    @property
    def acceptance_rate(self) -> float:
        if self.n_proposals == 0:
            return 0.0
        return self.n_accepted / self.n_proposals

    @classmethod
    def merge(
        cls,
        parts: Sequence["InferenceResult"],
        keep_chains: bool = False,
    ) -> "InferenceResult":
        """Combine per-worker results into one.

        Samples and weights concatenate in worker order (deterministic:
        the runner preserves shard order), work counters sum, and the
        acceptance statistics pool.  ``keep_chains=True`` records each
        part's samples as an independent chain for cross-chain
        diagnostics.  ``elapsed_seconds`` sums the workers' own clocks;
        the parallel runner overwrites it with the wall-clock time of
        the whole fan-out.
        """
        if not parts:
            raise InferenceError("cannot merge zero inference results")
        merged = cls()
        has_weights = any(p.weights is not None for p in parts)
        if has_weights:
            merged.weights = []
        for p in parts:
            merged.samples.extend(p.samples)
            if has_weights:
                assert merged.weights is not None
                if p.weights is None:
                    raise InferenceError(
                        "cannot merge weighted and unweighted results"
                    )
                merged.weights.extend(p.weights)
            merged.statements_executed += p.statements_executed
            merged.n_proposals += p.n_proposals
            merged.n_accepted += p.n_accepted
            merged.elapsed_seconds += p.elapsed_seconds
        if all(p.lineages is not None for p in parts):
            # Independent islands: their surviving genealogies add.
            merged.lineages = sum(p.lineages for p in parts)  # type: ignore[misc]
        if keep_chains:
            merged.chains = [list(p.samples) for p in parts]
        return merged

    def distribution(self) -> FiniteDist:
        """The (estimated or exact) output distribution."""
        if self.exact is not None:
            return self.exact
        if self.moments is not None:
            raise InferenceError(
                "continuous moment-based result has no finite distribution"
            )
        if self.weights is not None:
            return FiniteDist.from_weighted_samples(zip(self.samples, self.weights))
        return FiniteDist.from_samples(self.samples)

    def mean(self) -> float:
        """Posterior mean of the return value (booleans as 0/1)."""
        if self.moments is not None:
            return self.moments[0]
        if self.exact is not None:
            return self.exact.expectation()
        return self._sample_reductions()[1]

    def variance(self) -> float:
        """Posterior variance of the return value."""
        if self.moments is not None:
            return self.moments[1]
        if self.exact is not None:
            return self.exact.variance()
        return self._sample_reductions()[2]

    def _sample_reductions(self) -> tuple:
        """``(n, mean, variance)`` over the samples, computed once per
        sample count.  The formulas are unchanged from the historical
        per-call loops (two passes, so the floating-point results are
        bit-identical to before the memoization)."""
        n = len(self.samples)
        cached = self._reductions
        if cached is not None and cached[0] == n:
            return cached
        if n == 0:
            raise InferenceError("no samples")
        if self.weights is not None:
            total = sum(self.weights)
            if total <= 0.0:
                raise InferenceError("all importance weights are zero")
            m = (
                sum(float(s) * w for s, w in zip(self.samples, self.weights)) / total
            )
            v = (
                sum(w * (float(s) - m) ** 2 for s, w in zip(self.samples, self.weights))
                / total
            )
        else:
            m = sum(float(s) for s in self.samples) / n
            v = sum((float(s) - m) ** 2 for s in self.samples) / n
        self._reductions = (n, m, v)
        return self._reductions


class Engine:
    """Abstract inference engine: ``infer(program) -> InferenceResult``.

    Engines that execute programs forward route every run through
    :meth:`_run_program`, which honors the opt-in ``compiled`` flag:
    when set, the program is translated once to Python closures
    (:mod:`repro.semantics.compiled` — built on the shared IR) and runs
    skip per-node interpretive dispatch.  Default off; the compiled
    executor replicates :func:`repro.semantics.executor.run_program`'s
    trace, replay, and blocked-run behavior exactly, so the flag only
    changes speed, never the sampled stream.

    ``compiled`` is tri-state (``bool | str``, backward compatible —
    any truthy value routes scalar runs through the closure backend):

    * ``False`` — interpret every run;
    * ``True`` — closure backend (:mod:`repro.semantics.compiled`);
    * ``"numpy"`` — the array backend
      (:mod:`repro.semantics.vectorized`): batch-capable engines
      (rejection, importance, MH, SMC) advance whole batches of lanes
      per numpy step.  Programs outside the vectorizable fragment fall
      back to the closure backend per engine run; :meth:`_vectorize`
      records the fallback and its ``NotVectorizable`` reason as obs
      counters (``vectorized.fallback.*``) so the fallback is never
      silent.
    """

    name: str = "engine"
    #: Opt-in executor selection: ``False`` (interpreter), ``True``
    #: (closure backend), or ``"numpy"`` (array backend with closure
    #: fallback).  Any truthy value keeps scalar helper runs compiled.
    compiled: "bool | str" = False
    #: How this engine's sampling work decomposes across workers:
    #: ``"chains"`` (independent MCMC chains: MH, trace MH, Gibbs),
    #: ``"draws"`` (i.i.d. draws: importance, rejection), ``"islands"``
    #: (SMC particle islands), or ``"none"`` (cannot be sharded — the
    #: parallel runner falls back to a single sequential ``infer``).
    parallel_unit: str = "none"

    def infer(self, program: Program) -> InferenceResult:
        raise NotImplementedError

    # -- parallel-decomposition protocol (repro.runtime) ----------------------

    def shard(self, n_shards: int, seeds: Sequence[int]) -> List["Engine"]:
        """Split this engine's sampling work into ``n_shards``
        independently-runnable engines.

        Each shard is a configured copy with its slice of the total
        sample budget and ``seeds[i]`` as its seed; the runner derives
        ``seeds`` deterministically from the engine's master seed, so a
        fixed master seed makes the whole fan-out reproducible.  A
        shard may be omitted when its share of the budget is zero, so
        the returned list can be shorter than ``n_shards``.  Engines
        with ``parallel_unit == "none"`` raise.
        """
        raise UnsupportedProgramError(
            f"engine {self.name!r} does not support parallel sharding"
        )

    def merge(self, parts: Sequence[InferenceResult]) -> InferenceResult:
        """Combine the shard results (in shard order) into one result.

        The default pools samples/weights/work counters; chain-shaped
        engines keep per-chain samples for cross-chain diagnostics.
        """
        return InferenceResult.merge(
            parts, keep_chains=self.parallel_unit == "chains"
        )

    def _run_program(
        self,
        program: Program,
        rng: random.Random,
        base_trace: "Optional[Trace]" = None,
        options: ExecutorOptions = ExecutorOptions(),
    ) -> RunResult:
        """One forward run of ``program``, interpreted or compiled."""
        if self.compiled:
            from ..semantics.compiled import compile_program

            return compile_program(program).run(
                rng, base_trace=base_trace, options=options
            )
        return run_program(program, rng, base_trace=base_trace, options=options)

    def _vectorize(self, program: Program):
        """The program's array-backend compilation when
        ``compiled == "numpy"`` and the program is inside the
        vectorizable fragment, else ``None``.

        A ``None`` from a ``"numpy"`` engine means *fallback*: the
        engine proceeds on the closure backend (``"numpy"`` is truthy,
        so :meth:`_run_program` already compiles), and the obs counters
        ``vectorized.fallback.<engine>`` and
        ``vectorized.fallback.reason.<reason>`` record why.
        """
        if self.compiled != "numpy":
            return None
        from ..obs.recorder import current_recorder
        from ..semantics.vectorized import NotVectorizable, compile_vectorized

        try:
            vectorized = compile_vectorized(program)
        except NotVectorizable as exc:
            recorder = current_recorder()
            recorder.counter(f"vectorized.fallback.{self.name}")
            recorder.counter(f"vectorized.fallback.reason.{exc.reason}")
            return None
        current_recorder().counter(f"vectorized.used.{self.name}")
        return vectorized


def effective_sample_size(samples: Sequence[float], max_lag: int = 200) -> float:
    """ESS via the initial-positive-sequence autocorrelation estimator.

    Used by diagnostics and by the convergence benchmark to compare
    chains on original vs sliced programs.
    """
    n = len(samples)
    if n < 3:
        return float(n)
    mean = sum(samples) / n
    centered = [s - mean for s in samples]
    var = sum(c * c for c in centered) / n
    if var == 0.0:
        return float(n)
    rho_sum = 0.0
    for lag in range(1, min(max_lag, n - 1)):
        acov = sum(centered[i] * centered[i + lag] for i in range(n - lag)) / n
        rho = acov / var
        if rho <= 0.0:
            break
        rho_sum += rho
    ess = n / (1.0 + 2.0 * rho_sum)
    return max(1.0, min(float(n), ess))
