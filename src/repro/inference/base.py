"""Common infrastructure for the inference engines."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import random
from typing import TYPE_CHECKING

from ..core.ast import Program
from ..semantics.distribution import FiniteDist
from ..semantics.executor import ExecutorOptions, RunResult, run_program
from ..semantics.values import Value

if TYPE_CHECKING:
    from ..semantics.trace import Trace

__all__ = [
    "InferenceError",
    "UnsupportedProgramError",
    "InferenceTimeout",
    "InitializationError",
    "InferenceResult",
    "Engine",
]


class InferenceError(RuntimeError):
    """Generic inference failure."""


class UnsupportedProgramError(InferenceError):
    """The engine cannot handle a feature of this program (e.g. the
    Church-like engine and the Gamma distribution, or rejection
    sampling with soft conditioning)."""


class InferenceTimeout(InferenceError):
    """The engine exceeded its wall-clock budget — this is how the
    paper's 'Church does not terminate on the original program' rows
    manifest in our harness."""


class InitializationError(InferenceError):
    """No trace satisfying the hard observations was found."""


@dataclass
class InferenceResult:
    """Output of an inference engine.

    For samplers, ``samples`` holds the (post-burn-in) return values
    and ``weights`` optional importance weights.  The exact engine
    sets ``exact`` directly.  ``statements_executed`` is a
    deterministic work measure used by the benchmark harness alongside
    wall time.
    """

    samples: List[Value] = field(default_factory=list)
    weights: Optional[List[float]] = None
    exact: Optional[FiniteDist] = None
    #: Continuous engines (Gaussian EP) report posterior (mean, variance).
    moments: Optional[tuple] = None
    elapsed_seconds: float = 0.0
    statements_executed: int = 0
    n_proposals: int = 0
    n_accepted: int = 0

    @property
    def acceptance_rate(self) -> float:
        if self.n_proposals == 0:
            return 0.0
        return self.n_accepted / self.n_proposals

    def distribution(self) -> FiniteDist:
        """The (estimated or exact) output distribution."""
        if self.exact is not None:
            return self.exact
        if self.moments is not None:
            raise InferenceError(
                "continuous moment-based result has no finite distribution"
            )
        if self.weights is not None:
            return FiniteDist.from_weighted_samples(zip(self.samples, self.weights))
        return FiniteDist.from_samples(self.samples)

    def mean(self) -> float:
        """Posterior mean of the return value (booleans as 0/1)."""
        if self.moments is not None:
            return self.moments[0]
        if self.exact is not None:
            return self.exact.expectation()
        if not self.samples:
            raise InferenceError("no samples")
        if self.weights is not None:
            total = sum(self.weights)
            if total <= 0.0:
                raise InferenceError("all importance weights are zero")
            return (
                sum(float(s) * w for s, w in zip(self.samples, self.weights)) / total
            )
        return sum(float(s) for s in self.samples) / len(self.samples)

    def variance(self) -> float:
        """Posterior variance of the return value."""
        if self.moments is not None:
            return self.moments[1]
        if self.exact is not None:
            return self.exact.variance()
        m = self.mean()
        if self.weights is not None:
            total = sum(self.weights)
            return (
                sum(w * (float(s) - m) ** 2 for s, w in zip(self.samples, self.weights))
                / total
            )
        return sum((float(s) - m) ** 2 for s in self.samples) / len(self.samples)


class Engine:
    """Abstract inference engine: ``infer(program) -> InferenceResult``.

    Engines that execute programs forward route every run through
    :meth:`_run_program`, which honors the opt-in ``compiled`` flag:
    when set, the program is translated once to Python closures
    (:mod:`repro.semantics.compiled` — built on the shared IR) and runs
    skip per-node interpretive dispatch.  Default off; the compiled
    executor replicates :func:`repro.semantics.executor.run_program`'s
    trace, replay, and blocked-run behavior exactly, so the flag only
    changes speed, never the sampled stream.
    """

    name: str = "engine"
    #: Opt-in: execute via the compiled (codegen) executor.
    compiled: bool = False

    def infer(self, program: Program) -> InferenceResult:
        raise NotImplementedError

    def _run_program(
        self,
        program: Program,
        rng: random.Random,
        base_trace: "Optional[Trace]" = None,
        options: ExecutorOptions = ExecutorOptions(),
    ) -> RunResult:
        """One forward run of ``program``, interpreted or compiled."""
        if self.compiled:
            from ..semantics.compiled import compile_program

            return compile_program(program).run(
                rng, base_trace=base_trace, options=options
            )
        return run_program(program, rng, base_trace=base_trace, options=options)


def effective_sample_size(samples: Sequence[float], max_lag: int = 200) -> float:
    """ESS via the initial-positive-sequence autocorrelation estimator.

    Used by diagnostics and by the convergence benchmark to compare
    chains on original vs sliced programs.
    """
    n = len(samples)
    if n < 3:
        return float(n)
    mean = sum(samples) / n
    centered = [s - mean for s in samples]
    var = sum(c * c for c in centered) / n
    if var == 0.0:
        return float(n)
    rho_sum = 0.0
    for lag in range(1, min(max_lag, n - 1)):
        acov = sum(centered[i] * centered[i + lag] for i in range(n - lag)) / n
        rho = acov / var
        if rho <= 0.0:
            break
        rho_sum += rho
    ess = n / (1.0 + 2.0 * rho_sum)
    return max(1.0, min(float(n), ess))
