"""Trace MH with global resimulation moves — the "Church-like" engine.

Church [Goodman et al., 2008] runs MCMC over a *interpreted* Scheme
program.  We model it as the same lightweight trace MH as the R2-like
engine, with two documented differences (DESIGN.md §3):

* an **interpretation overhead factor**: every proposal re-executes
  the program ``overhead`` times, modelling the constant-factor cost
  of interpreting a dynamically-typed host language.  Together with a
  wall-clock ``time_budget`` this reproduces Figure 18's "Church does
  not terminate on the original HIV/Halo programs" rows as timeouts;
* occasional **global resimulation moves** (probability
  ``global_move_prob``): an independence proposal that regenerates
  the entire trace from the prior, accepted with
  ``min(1, exp(loglik' - loglik))``.

Like the real system, it does not support the Gamma distribution —
the Bayesian-linear-regression column of Figure 18 is therefore
absent for this engine.
"""

from __future__ import annotations

import random
from typing import Optional

from ..core.ast import Program
from ..semantics.executor import RunResult
from .base import InferenceResult, UnsupportedProgramError
from .features import distributions_used
from .mh import MetropolisHastings

__all__ = ["ChurchTraceMH"]

NEG_INF = float("-inf")

#: Distributions the emulated engine refuses (Figure 18: "Church does
#: not support the Gamma distribution").
_UNSUPPORTED = frozenset({"Gamma"})


class ChurchTraceMH(MetropolisHastings):
    """Church-emulating trace MH; see module docstring."""

    name = "church-mh"

    def __init__(
        self,
        n_samples: int = 5_000,
        burn_in: int = 500,
        thin: int = 1,
        seed: int = 0,
        global_move_prob: float = 0.1,
        overhead: int = 3,
        **kwargs,
    ) -> None:
        super().__init__(
            n_samples=n_samples,
            burn_in=burn_in,
            thin=thin,
            seed=seed,
            global_move_prob=global_move_prob,
            **kwargs,
        )
        if overhead < 1:
            raise ValueError("overhead must be >= 1")
        self.overhead = overhead

    def _vectorize(self, program):
        # This engine models an *interpreted* host; the array backend
        # would erase the overhead factor the emulation exists to
        # charge, so church-mh always takes the scalar path (a truthy
        # ``compiled`` still routes those runs through the closure
        # backend).
        return None

    def _execute(self, program, rng, base_trace, result: InferenceResult) -> RunResult:
        # Interpretation overhead: re-run the executor redundantly so
        # per-proposal cost scales like an interpreted host's would.
        # The extra runs replay the *produced* trace, so the sampled
        # values are identical and only work is added.
        run = self._run_program(
            program, rng, base_trace=base_trace, options=self.executor_options
        )
        result.statements_executed += run.statements_executed
        for _ in range(self.overhead - 1):
            replay = self._run_program(
                program, rng, base_trace=run.trace, options=self.executor_options
            )
            result.statements_executed += replay.statements_executed
        return run

    def infer(self, program: Program) -> InferenceResult:
        unsupported = distributions_used(program) & _UNSUPPORTED
        if unsupported:
            raise UnsupportedProgramError(
                f"{self.name} does not support: {', '.join(sorted(unsupported))}"
            )
        return super().infer(program)
