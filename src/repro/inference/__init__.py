"""Inference engines: rejection, likelihood weighting, single-site MH
("R2"), Church-like trace MH, and exact enumeration."""

from .base import (
    Engine,
    InferenceError,
    InferenceCancelled,
    InferenceResult,
    InferenceTimeout,
    InitializationError,
    UnsupportedProgramError,
    effective_sample_size,
    split_evenly,
)
from .diagnostics import (
    ChainSummary,
    autocorrelation,
    cross_chain_diagnostics,
    split_r_hat,
    summarize_chains,
)
from .enumeration import EnumerationEngine
from .gibbs import GibbsSampler
from .features import (
    distributions_used,
    has_hard_observe,
    has_loop,
    has_soft_conditioning,
)
from .importance import LikelihoodWeighting
from .mh import MetropolisHastings
from .rejection import RejectionSampler
from .smc import SMCSampler
from .tracemh import ChurchTraceMH

__all__ = [
    "Engine",
    "InferenceError",
    "InferenceCancelled",
    "InferenceResult",
    "InferenceTimeout",
    "InitializationError",
    "UnsupportedProgramError",
    "effective_sample_size",
    "split_evenly",
    "ChainSummary",
    "autocorrelation",
    "cross_chain_diagnostics",
    "split_r_hat",
    "summarize_chains",
    "EnumerationEngine",
    "GibbsSampler",
    "LikelihoodWeighting",
    "MetropolisHastings",
    "RejectionSampler",
    "SMCSampler",
    "ChurchTraceMH",
    "distributions_used",
    "has_hard_observe",
    "has_loop",
    "has_soft_conditioning",
]
