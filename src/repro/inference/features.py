"""Static feature queries on programs, used by engines to decide what
they support."""

from __future__ import annotations

from typing import FrozenSet

from ..core.ast import (
    Block,
    Factor,
    If,
    Observe,
    ObserveSample,
    Program,
    Sample,
    Stmt,
    While,
)

__all__ = [
    "distributions_used",
    "has_soft_conditioning",
    "has_hard_observe",
    "has_loop",
]


def _walk(stmt: Stmt):
    yield stmt
    if isinstance(stmt, Block):
        for s in stmt.stmts:
            yield from _walk(s)
    elif isinstance(stmt, If):
        yield from _walk(stmt.then_branch)
        yield from _walk(stmt.else_branch)
    elif isinstance(stmt, While):
        yield from _walk(stmt.body)


def distributions_used(program: Program) -> FrozenSet[str]:
    """Names of all distributions sampled or soft-observed."""
    names = set()
    for s in _walk(program.body):
        if isinstance(s, Sample):
            names.add(s.dist.name)
        elif isinstance(s, ObserveSample):
            names.add(s.dist.name)
    return frozenset(names)


def has_soft_conditioning(program: Program) -> bool:
    """True when the program uses ``observe(Dist, v)`` or ``factor``."""
    return any(
        isinstance(s, (ObserveSample, Factor)) for s in _walk(program.body)
    )


def has_hard_observe(program: Program) -> bool:
    """True when the program uses ``observe(phi)``."""
    return any(isinstance(s, Observe) for s in _walk(program.body))


def has_loop(program: Program) -> bool:
    """True when the program contains a while loop."""
    return any(isinstance(s, While) for s in _walk(program.body))
