"""Likelihood weighting (importance sampling from the prior).

Each forward run contributes its return value weighted by
``exp(log_likelihood)``: hard observes contribute 0/1, soft observes
their density.  Non-terminating runs contribute zero weight, matching
the normalized-over-terminating-runs semantics.
"""

from __future__ import annotations

import copy
import math
import random
import time
from typing import List, Optional, Sequence

from ..core.ast import Program
from ..semantics.executor import ExecutorOptions, NonTerminatingRun
from .base import Engine, InferenceError, InferenceResult, split_evenly

__all__ = ["LikelihoodWeighting"]


def _weight_ess(sum_w: float, sum_w2: float) -> float:
    """Kish effective sample size of the importance weights so far."""
    if sum_w2 <= 0.0:
        return 0.0
    return sum_w * sum_w / sum_w2


class LikelihoodWeighting(Engine):
    """Draw ``n_samples`` prior runs with likelihood weights."""

    name = "likelihood-weighting"
    parallel_unit = "draws"

    def __init__(
        self,
        n_samples: int = 10_000,
        seed: int = 0,
        executor_options: ExecutorOptions = ExecutorOptions(),
        compiled: "bool | str" = False,
        batch_size: Optional[int] = None,
    ) -> None:
        if n_samples <= 0:
            raise ValueError("n_samples must be positive")
        self.n_samples = n_samples
        self.seed = seed
        self.executor_options = executor_options
        self.compiled = compiled
        #: Lanes per vectorized step under ``compiled="numpy"``; ``None``
        #: draws all ``n_samples`` lanes at once up to a 16384-lane cap.
        self.batch_size = batch_size

    def shard(self, n_shards: int, seeds: Sequence[int]) -> List[Engine]:
        """I.i.d. draws: each shard draws its share of ``n_samples``.
        Weights are raw likelihoods (a shared scale), so concatenation
        is the correct merge."""
        shards: List[Engine] = []
        for size, seed in zip(split_evenly(self.n_samples, n_shards), seeds):
            if size == 0:
                continue
            shard = copy.copy(self)
            shard.n_samples = size
            shard.seed = seed
            shards.append(shard)
        return shards

    def infer(self, program: Program) -> InferenceResult:
        from ..obs.recorder import current_recorder

        vectorized = self._vectorize(program)
        if vectorized is not None:
            return self._infer_numpy(vectorized)

        rng = random.Random(self.seed)
        result = InferenceResult(weights=[])
        rec = current_recorder()
        start = time.perf_counter()
        assert result.weights is not None
        # Running Σw / Σw² for the weight-degeneracy ESS progress metric.
        sum_w = 0.0
        sum_w2 = 0.0
        if rec.enabled:
            # Baseline report: gives the live snapshot layer a row (and
            # the stall monitor a reference point) before the first
            # 256-draw reporting interval completes.
            rec.progress(self.name, 0, self.n_samples, ess=0.0)
        for i in range(self.n_samples):
            if rec.enabled and i % 256 == 0 and i:
                rec.progress(
                    self.name, i, self.n_samples, ess=_weight_ess(sum_w, sum_w2)
                )
            try:
                run = self._run_program(program, rng, options=self.executor_options)
            except NonTerminatingRun:
                continue
            result.statements_executed += run.statements_executed
            if run.blocked:
                continue
            result.samples.append(run.value)
            w = math.exp(min(run.log_likelihood, 700.0))
            result.weights.append(w)
            sum_w += w
            sum_w2 += w * w
        result.n_proposals = self.n_samples
        result.n_accepted = len(result.samples)
        result.elapsed_seconds = time.perf_counter() - start
        if rec.enabled:
            rec.progress(
                self.name,
                self.n_samples,
                self.n_samples,
                ess=_weight_ess(sum_w, sum_w2),
            )
            rec.counter("engine.proposals", result.n_proposals)
            rec.counter("engine.samples", len(result.samples))
        if not result.samples or sum(result.weights) <= 0.0:
            raise InferenceError("all likelihood weights are zero")
        return result

    def _infer_numpy(self, vectorized) -> InferenceResult:
        """Array-backend likelihood weighting: whole chunks of prior
        lanes advance per numpy step.  Blocked lanes (hard-observe
        failures or ``-inf`` soft scores) drop exactly as the scalar
        loop skips blocked runs; surviving weights are the same
        overflow-clamped ``exp(min(ll, 700))``."""
        import numpy as np

        from ..obs.recorder import current_recorder
        from ..runtime.parallel import numpy_generator

        gen = numpy_generator(self.seed, "likelihood-weighting")
        rec = current_recorder()
        result = InferenceResult(weights=[])
        assert result.weights is not None
        start = time.perf_counter()
        sum_w = 0.0
        sum_w2 = 0.0
        cap = self.batch_size if self.batch_size is not None else 16384
        done = 0
        if rec.enabled:
            rec.progress(self.name, 0, self.n_samples, ess=0.0)
        while done < self.n_samples:
            chunk = min(cap, self.n_samples - done)
            batch = vectorized.run_batch(gen, chunk)
            done += chunk
            result.statements_executed += int(batch.statements.sum())
            keep = np.flatnonzero(~batch.blocked)
            weights = np.exp(np.minimum(batch.log_likelihood[keep], 700.0))
            value = batch.value
            if isinstance(value, tuple):
                columns = [np.asarray(v)[keep] for v in value]
                for j in range(keep.size):
                    result.samples.append(tuple(c[j].item() for c in columns))
            else:
                result.samples.extend(v.item() for v in np.asarray(value)[keep])
            result.weights.extend(weights.tolist())
            sum_w += float(weights.sum())
            sum_w2 += float((weights * weights).sum())
            if rec.enabled:
                rec.progress(
                    self.name,
                    done,
                    self.n_samples,
                    ess=_weight_ess(sum_w, sum_w2),
                )
        result.n_proposals = self.n_samples
        result.n_accepted = len(result.samples)
        result.elapsed_seconds = time.perf_counter() - start
        if rec.enabled:
            rec.counter("engine.proposals", result.n_proposals)
            rec.counter("engine.samples", len(result.samples))
        if not result.samples or sum_w <= 0.0:
            raise InferenceError("all likelihood weights are zero")
        return result
