"""Likelihood weighting (importance sampling from the prior).

Each forward run contributes its return value weighted by
``exp(log_likelihood)``: hard observes contribute 0/1, soft observes
their density.  Non-terminating runs contribute zero weight, matching
the normalized-over-terminating-runs semantics.
"""

from __future__ import annotations

import copy
import math
import random
import time
from typing import List, Sequence

from ..core.ast import Program
from ..semantics.executor import ExecutorOptions, NonTerminatingRun
from .base import Engine, InferenceError, InferenceResult, split_evenly

__all__ = ["LikelihoodWeighting"]


class LikelihoodWeighting(Engine):
    """Draw ``n_samples`` prior runs with likelihood weights."""

    name = "likelihood-weighting"
    parallel_unit = "draws"

    def __init__(
        self,
        n_samples: int = 10_000,
        seed: int = 0,
        executor_options: ExecutorOptions = ExecutorOptions(),
        compiled: bool = False,
    ) -> None:
        if n_samples <= 0:
            raise ValueError("n_samples must be positive")
        self.n_samples = n_samples
        self.seed = seed
        self.executor_options = executor_options
        self.compiled = compiled

    def shard(self, n_shards: int, seeds: Sequence[int]) -> List[Engine]:
        """I.i.d. draws: each shard draws its share of ``n_samples``.
        Weights are raw likelihoods (a shared scale), so concatenation
        is the correct merge."""
        shards: List[Engine] = []
        for size, seed in zip(split_evenly(self.n_samples, n_shards), seeds):
            if size == 0:
                continue
            shard = copy.copy(self)
            shard.n_samples = size
            shard.seed = seed
            shards.append(shard)
        return shards

    def infer(self, program: Program) -> InferenceResult:
        rng = random.Random(self.seed)
        result = InferenceResult(weights=[])
        start = time.perf_counter()
        assert result.weights is not None
        for _ in range(self.n_samples):
            try:
                run = self._run_program(program, rng, options=self.executor_options)
            except NonTerminatingRun:
                continue
            result.statements_executed += run.statements_executed
            if run.blocked:
                continue
            result.samples.append(run.value)
            result.weights.append(math.exp(min(run.log_likelihood, 700.0)))
        result.n_proposals = self.n_samples
        result.n_accepted = len(result.samples)
        result.elapsed_seconds = time.perf_counter() - start
        if not result.samples or sum(result.weights) <= 0.0:
            raise InferenceError("all likelihood weights are zero")
        return result
