"""Single-site lightweight Metropolis–Hastings over traces — the
"R2-like" engine.

R2 performs MCMC sampling over an imperative probabilistic language
[Nori et al.]; the single-site trace MH of Wingate et al. (2011) is
the same algorithmic family and reacts to slicing the same way: each
proposal re-executes the program (cost ∝ program size) and mixing
degrades with every nuisance sample site the slicer failed to remove.

Proposal: pick a site uniformly, resample it from its prior (under the
current upstream parameters), re-execute reusing the rest of the
trace.  Acceptance (fresh/stale prior terms included)::

    log a = logjoint' - logjoint + log|m| - log|m'| + R - F

where ``F`` is the forward proposal mass (fresh draws of the chosen
site plus sites only present in the new trace) and ``R`` the reverse
one.
"""

from __future__ import annotations

import copy
import math
import random
import time
from typing import List, Optional, Sequence

from ..core.ast import Program
from ..semantics.executor import (
    ExecutorOptions,
    NonTerminatingRun,
    RunResult,
)
from .base import (
    Engine,
    InferenceResult,
    InferenceTimeout,
    InitializationError,
)

__all__ = ["MetropolisHastings"]

NEG_INF = float("-inf")


class MetropolisHastings(Engine):
    """Single-site trace MH.

    ``n_samples`` return-value samples are recorded after ``burn_in``
    accepted-or-rejected steps, thinned by ``thin``.  ``time_budget``
    (seconds) raises :class:`InferenceTimeout` when exceeded, which the
    harness reports as a non-terminating configuration.
    """

    name = "r2-mh"
    parallel_unit = "chains"

    def __init__(
        self,
        n_samples: int = 5_000,
        burn_in: int = 500,
        thin: int = 1,
        seed: int = 0,
        max_init_attempts: int = 1_000,
        anneal_rounds: int = 30,
        anneal_steps_per_site: int = 25,
        global_move_prob: float = 0.05,
        time_budget: Optional[float] = None,
        executor_options: ExecutorOptions = ExecutorOptions(),
        compiled: "bool | str" = False,
        batch_chains: int = 64,
    ) -> None:
        if n_samples <= 0:
            raise ValueError("n_samples must be positive")
        if thin <= 0:
            raise ValueError("thin must be positive")
        if not 0.0 <= global_move_prob <= 1.0:
            raise ValueError("global_move_prob must be in [0, 1]")
        if batch_chains <= 0:
            raise ValueError("batch_chains must be positive")
        self.n_samples = n_samples
        self.burn_in = burn_in
        self.thin = thin
        self.seed = seed
        self.max_init_attempts = max_init_attempts
        self.anneal_rounds = anneal_rounds
        self.anneal_steps_per_site = anneal_steps_per_site
        self.global_move_prob = global_move_prob
        self.time_budget = time_budget
        self.executor_options = executor_options
        self.compiled = compiled
        #: Lockstep chains per vectorized step under ``compiled="numpy"``
        #: (capped at ``n_samples``); each records its
        #: :func:`~repro.inference.base.split_evenly` share of the total.
        self.batch_chains = batch_chains
        self._deadline: Optional[float] = None

    def shard(self, n_shards: int, seeds: Sequence[int]) -> List["Engine"]:
        """Independent chains: each shard runs a full burn-in plus its
        share of ``n_samples``, seeded from its own stream.  The
        Church-like subclass inherits this unchanged (``copy.copy``
        carries ``overhead`` and every other setting along)."""
        from .base import split_evenly

        shards: List[Engine] = []
        for size, seed in zip(split_evenly(self.n_samples, n_shards), seeds):
            if size == 0:
                continue
            shard = copy.copy(self)
            shard.n_samples = size
            shard.seed = seed
            shard._deadline = None
            shards.append(shard)
        return shards

    # -- hooks the Church-like engine overrides -------------------------------

    def _execute(self, program, rng, base_trace, result: InferenceResult) -> RunResult:
        run = self._run_program(
            program, rng, base_trace=base_trace, options=self.executor_options
        )
        result.statements_executed += run.statements_executed
        return run

    def _propose(
        self,
        program: Program,
        rng: random.Random,
        current: RunResult,
        result: InferenceResult,
    ) -> Optional[RunResult]:
        """One proposal; returns the new state if accepted, else None.

        With probability ``global_move_prob`` the proposal regenerates
        the whole trace from the prior (an independence move; prior
        terms cancel, leaving the likelihood ratio).  Global moves keep
        the chain ergodic on programs where a hard constraint couples
        sites that single-site updates can only change together — e.g.
        the paper's loopy Example 6, where the return flag and the loop
        parity must flip jointly.
        """
        if rng.random() < self.global_move_prob:
            return self._propose_global(program, rng, current, result)
        sites = list(current.trace)
        if not sites:
            return None
        addr = sites[rng.randrange(len(sites))]
        base = dict(current.trace)
        del base[addr]
        try:
            proposal = self._execute(program, rng, base, result)
        except NonTerminatingRun:
            return None
        if proposal.blocked or proposal.log_joint == NEG_INF:
            return None
        forward = 0.0
        reverse = current.trace[addr].log_prior
        if addr in proposal.trace:
            forward += proposal.trace[addr].log_prior
        for a, entry in proposal.trace.items():
            if a not in current.trace and a != addr:
                forward += entry.log_prior
        for a, entry in current.trace.items():
            if a not in proposal.trace and a != addr:
                reverse += entry.log_prior
        log_alpha = (
            proposal.log_joint
            - current.log_joint
            + math.log(len(sites))
            - math.log(len(proposal.trace) if proposal.trace else 1)
            + reverse
            - forward
        )
        if log_alpha >= 0.0 or math.log(rng.random()) < log_alpha:
            return proposal
        return None

    def _propose_global(
        self,
        program: Program,
        rng: random.Random,
        current: RunResult,
        result: InferenceResult,
    ) -> Optional[RunResult]:
        """Independence proposal: resimulate everything from the prior."""
        try:
            proposal = self._execute(program, rng, None, result)
        except NonTerminatingRun:
            return None
        if proposal.blocked:
            return None
        log_alpha = proposal.log_likelihood - current.log_likelihood
        if log_alpha >= 0.0 or math.log(rng.random()) < log_alpha:
            return proposal
        return None

    # -- main loop -------------------------------------------------------------

    def _initialize(
        self, program: Program, rng: random.Random, result: InferenceResult
    ) -> RunResult:
        for attempt in range(self.max_init_attempts):
            if attempt % 64 == 0:
                self._check_deadline("initialization")
            try:
                run = self._execute(program, rng, None, result)
            except NonTerminatingRun:
                continue
            if not run.blocked and run.log_joint > NEG_INF:
                return run
        return self._annealed_initialize(program, rng, result)

    def _annealed_initialize(
        self, program: Program, rng: random.Random, result: InferenceResult
    ) -> RunResult:
        """Find a constraint-satisfying trace by annealing.

        Hard observes are relaxed to a per-violation penalty
        (``ExecutorOptions.observe_penalty``); single-site MH on the
        relaxed target with a doubling penalty schedule walks the chain
        into the feasible region.  This plays the role of R2's
        analysis-guided initialization for constraint-heavy models
        (TrueSkill: thousands of ``observe(perfA > perfB)``).
        """
        saved_options = self.executor_options
        try:
            penalty = 1.0
            current: Optional[RunResult] = None
            best_violations = float("inf")
            stall = 0
            for _ in range(self.anneal_rounds):
                self.executor_options = ExecutorOptions(
                    max_loop_iterations=saved_options.max_loop_iterations,
                    observe_penalty=penalty,
                )
                if current is None:
                    current = self._execute(program, rng, None, result)
                else:
                    # Re-score the trace under the new penalty.
                    current = self._execute(program, rng, current.trace, result)
                if current.blocked:
                    current = None
                    continue
                steps = max(
                    1, self.anneal_steps_per_site * max(1, len(current.trace))
                )
                for step in range(steps):
                    if current.violations == 0:
                        break
                    if step % 64 == 0:
                        self._check_deadline("annealed initialization")
                    if rng.random() < 0.5:
                        accepted = self._propose(program, rng, current, result)
                    else:
                        accepted = self._propose_walk(program, rng, current, result)
                    if accepted is not None:
                        current = accepted
                if current.violations == 0:
                    # Re-execute strictly to confirm and re-score.
                    self.executor_options = saved_options
                    strict = self._execute(program, rng, current.trace, result)
                    if not strict.blocked and strict.log_joint > NEG_INF:
                        return strict
                # Cyclic schedule: a monotone penalty freezes the chain
                # in local minima; when no progress is made for a few
                # rounds, re-melt (drop the penalty back to 1) and
                # sometimes restart from a fresh prior draw.
                if current.violations < best_violations:
                    best_violations = current.violations
                    stall = 0
                    penalty *= 2.0
                else:
                    stall += 1
                    if stall >= 3:
                        penalty = 1.0
                        stall = 0
                        best_violations = current.violations
                        if rng.random() < 0.5:
                            current = None
                    else:
                        penalty *= 2.0
            raise InitializationError(
                "annealed initialization failed to satisfy all observations"
            )
        finally:
            self.executor_options = saved_options

    def _propose_walk(
        self,
        program: Program,
        rng: random.Random,
        current: RunResult,
        result: InferenceResult,
    ) -> Optional[RunResult]:
        """A random-walk perturbation of one continuous site.

        Only used during annealed initialization, where the kernel just
        needs to explore the penalized landscape — detailed balance is
        not required of an initializer.
        """
        sites = [
            a for a, e in current.trace.items() if isinstance(e.value, float)
        ]
        if not sites:
            return self._propose(program, rng, current, result)
        addr = sites[rng.randrange(len(sites))]
        entry = current.trace[addr]
        scale = 0.25 * (abs(entry.value) + 1.0)
        from ..semantics.trace import TraceEntry

        base = dict(current.trace)
        base[addr] = TraceEntry(
            entry.value + rng.gauss(0.0, scale), 0.0, entry.dist_name
        )
        try:
            proposal = self._execute(program, rng, base, result)
        except NonTerminatingRun:
            return None
        if proposal.blocked or proposal.log_joint == NEG_INF:
            return None
        log_alpha = proposal.log_joint - current.log_joint
        if log_alpha >= 0.0 or math.log(rng.random()) < log_alpha:
            return proposal
        return None

    def _check_deadline(self, context: str) -> None:
        if self._deadline is not None and time.perf_counter() > self._deadline:
            raise InferenceTimeout(
                f"{self.name} exceeded its {self.time_budget:.1f}s budget "
                f"during {context}"
            )

    def infer(self, program: Program) -> InferenceResult:
        from ..obs.recorder import current_recorder

        vectorized = self._vectorize(program)
        if vectorized is not None:
            return self._infer_numpy(program, vectorized)

        rng = random.Random(self.seed)
        result = InferenceResult()
        rec = current_recorder()
        start = time.perf_counter()
        self._deadline = (
            None if self.time_budget is None else start + self.time_budget
        )
        current = self._initialize(program, rng, result)
        total_steps = self.burn_in + self.n_samples * self.thin
        for step in range(total_steps):
            if step % 64 == 0:
                self._check_deadline(f"step {step} of {total_steps}")
                if rec.enabled:
                    rec.progress(
                        self.name,
                        step,
                        total_steps,
                        accept_rate=result.n_accepted / max(1, result.n_proposals),
                    )
            result.n_proposals += 1
            accepted = self._propose(program, rng, current, result)
            if accepted is not None:
                current = accepted
                result.n_accepted += 1
            if step >= self.burn_in and (step - self.burn_in) % self.thin == 0:
                result.samples.append(current.value)
        result.elapsed_seconds = time.perf_counter() - start
        if rec.enabled:
            rec.progress(
                self.name,
                total_steps,
                total_steps,
                accept_rate=result.n_accepted / max(1, result.n_proposals),
            )
            rec.counter("engine.proposals", result.n_proposals)
            rec.counter("engine.samples", len(result.samples))
        return result

    def _infer_numpy(self, program: Program, vectorized) -> InferenceResult:
        """Array-backend MH: a batch of independent chains advances in
        lockstep, one vectorized program run per step, with a per-chain
        accept mask.

        Initialization is the scalar path (one chain's worth of
        annealing machinery), replicated across all lanes; from there
        every lane applies the scalar single-site/global kernel
        element-wise — same site-choice distribution, same acceptance
        ratio term for term — so each lane is marginally the scalar
        chain (on a PCG64 stream instead of the Mersenne one).  Each
        chain records its :func:`split_evenly` share of ``n_samples``
        and the per-chain streams land in ``result.chains``.
        """
        import numpy as np

        from ..dists.batched import BATCHED
        from ..obs.recorder import current_recorder
        from ..runtime.parallel import numpy_generator
        from .base import split_evenly

        rec = current_recorder()
        result = InferenceResult()
        start = time.perf_counter()
        self._deadline = (
            None if self.time_budget is None else start + self.time_budget
        )
        rng = random.Random(self.seed)
        current = self._initialize(program, rng, result)

        B = min(self.batch_chains, self.n_samples)
        gen = numpy_generator(self.seed, "mh")
        sites = vectorized.sites
        S = len(sites)
        # Chain state: one (B,) column per static site (value, prior
        # log-density, presence), all lanes starting from the scalar
        # initializer's trace.
        vals: List[np.ndarray] = []
        lps: List[np.ndarray] = []
        pres: List[np.ndarray] = []
        for site in sites:
            entry = current.trace.get(site.addr)
            dtype = BATCHED[site.dist_name].dtype
            if entry is not None and entry.dist_name == site.dist_name:
                vals.append(np.full(B, entry.value, dtype=dtype))
                lps.append(np.full(B, entry.log_prior, dtype=np.float64))
                pres.append(np.ones(B, dtype=np.bool_))
            else:
                vals.append(np.zeros(B, dtype=dtype))
                lps.append(np.zeros(B, dtype=np.float64))
                pres.append(np.zeros(B, dtype=np.bool_))
        cur_ll = np.full(B, current.log_likelihood)
        cur_joint = np.full(B, current.log_joint)
        if isinstance(current.value, tuple):
            cur_value = tuple(np.full(B, v) for v in current.value)
        else:
            cur_value = np.full(B, current.value)

        quotas = split_evenly(self.n_samples, B)
        chains: List[List[object]] = [[] for _ in range(B)]
        total_steps = self.burn_in + max(quotas) * self.thin
        for step in range(total_steps):
            if step % 64 == 0:
                self._check_deadline(f"step {step} of {total_steps}")
                if rec.enabled:
                    rec.progress(
                        self.name,
                        step,
                        total_steps,
                        accept_rate=result.n_accepted
                        / max(1, result.n_proposals),
                    )
            gmask = gen.random(B) < self.global_move_prob
            if S:
                pres_mat = np.stack(pres)
                counts = pres_mat.sum(axis=0)
                # Uniform site choice via the presence-cumsum trick:
                # `order[s]` is the site's rank among the lane's
                # present sites, `pick` the target rank.
                pick = np.floor(
                    gen.random(B) * np.maximum(counts, 1)
                ).astype(np.int64)
                order = np.cumsum(pres_mat, axis=0) - pres_mat
                chosen = pres_mat & (order == pick) & ~gmask & (counts > 0)
                base_present = [
                    pres[s] & ~chosen[s] & ~gmask for s in range(S)
                ]
            else:
                counts = np.zeros(B, dtype=np.int64)
                chosen = np.zeros((0, B), dtype=np.bool_)
                base_present = []
            batch = vectorized.run_batch(gen, B, base=(vals, base_present))
            result.statements_executed += int(batch.statements.sum())
            prop_joint = batch.log_joints()
            with np.errstate(invalid="ignore", divide="ignore"):
                if S:
                    forward = np.zeros(B)
                    reverse = np.zeros(B)
                    m_new = np.zeros(B, dtype=np.int64)
                    for s in range(S):
                        new_p = batch.site_present[s]
                        forward += np.where(
                            new_p & (chosen[s] | ~pres[s]),
                            batch.site_log_priors[s],
                            0.0,
                        )
                        reverse += np.where(
                            pres[s] & (chosen[s] | ~new_p), lps[s], 0.0
                        )
                        m_new += new_p
                    log_alpha_site = (
                        prop_joint
                        - cur_joint
                        + np.log(np.maximum(counts, 1))
                        - np.log(np.maximum(m_new, 1))
                        + reverse
                        - forward
                    )
                else:
                    log_alpha_site = np.full(B, NEG_INF)
                log_alpha = np.where(
                    gmask, batch.log_likelihood - cur_ll, log_alpha_site
                )
                # NaN compares False on both sides: natural rejection,
                # as in the scalar kernel.
                accept = (log_alpha >= 0.0) | (np.log(gen.random(B)) < log_alpha)
            accept &= ~batch.blocked
            # Site moves need a site to move (scalar: empty trace
            # proposes nothing) and a finite proposal joint.
            accept &= gmask | ((counts > 0) & (prop_joint > NEG_INF))
            result.n_proposals += B
            n_acc = int(accept.sum())
            result.n_accepted += n_acc
            if n_acc:
                cur_ll = np.where(accept, batch.log_likelihood, cur_ll)
                cur_joint = np.where(accept, prop_joint, cur_joint)
                for s in range(S):
                    vals[s] = np.where(accept, batch.site_values[s], vals[s])
                    lps[s] = np.where(
                        accept, batch.site_log_priors[s], lps[s]
                    )
                    pres[s] = np.where(accept, batch.site_present[s], pres[s])
                if isinstance(cur_value, tuple):
                    cur_value = tuple(
                        np.where(accept, new, old)
                        for new, old in zip(batch.value, cur_value)
                    )
                else:
                    cur_value = np.where(accept, batch.value, cur_value)
            if step >= self.burn_in and (step - self.burn_in) % self.thin == 0:
                i = (step - self.burn_in) // self.thin
                if isinstance(cur_value, tuple):
                    columns = [np.asarray(v).tolist() for v in cur_value]
                    for c in range(B):
                        if i < quotas[c]:
                            chains[c].append(
                                tuple(column[c] for column in columns)
                            )
                else:
                    column = np.asarray(cur_value).tolist()
                    for c in range(B):
                        if i < quotas[c]:
                            chains[c].append(column[c])
        for chain in chains:
            result.samples.extend(chain)
        result.chains = chains
        result.elapsed_seconds = time.perf_counter() - start
        if rec.enabled:
            rec.progress(
                self.name,
                total_steps,
                total_steps,
                accept_rate=result.n_accepted / max(1, result.n_proposals),
            )
            rec.counter("engine.proposals", result.n_proposals)
            rec.counter("engine.samples", len(result.samples))
        return result
