"""Rejection sampling: run the program forward, keep runs that satisfy
every hard observation.

This implements the operational reading of the paper's semantics
directly (blocked runs "are not permitted to happen") and serves as a
slow-but-obviously-correct reference sampler.  Programs with soft
conditioning are rejected — their weights are unbounded densities, so
plain accept/reject does not apply; use likelihood weighting or MH.
"""

from __future__ import annotations

import copy
import random
import time
from typing import List, Optional, Sequence

from ..core.ast import Program
from ..semantics.executor import ExecutorOptions, NonTerminatingRun
from .base import (
    Engine,
    InferenceError,
    InferenceResult,
    UnsupportedProgramError,
    split_evenly,
)
from .features import has_soft_conditioning

__all__ = ["RejectionSampler"]


class RejectionSampler(Engine):
    """Collect ``n_samples`` accepted forward runs.

    ``max_attempts`` caps the total number of forward runs to protect
    against near-zero acceptance probability.
    """

    name = "rejection"
    parallel_unit = "draws"

    def __init__(
        self,
        n_samples: int = 10_000,
        seed: int = 0,
        max_attempts: int = 10_000_000,
        executor_options: ExecutorOptions = ExecutorOptions(),
        compiled: "bool | str" = False,
        batch_size: Optional[int] = None,
    ) -> None:
        if n_samples <= 0:
            raise ValueError("n_samples must be positive")
        self.n_samples = n_samples
        self.seed = seed
        self.max_attempts = max_attempts
        self.executor_options = executor_options
        self.compiled = compiled
        #: Lanes per vectorized step under ``compiled="numpy"``; ``None``
        #: sizes chunks adaptively from the running acceptance rate
        #: (capped at 16384 lanes) exactly like the scalar chunk loop.
        self.batch_size = batch_size

    def shard(self, n_shards: int, seeds: Sequence[int]) -> List[Engine]:
        """I.i.d. draws: each shard collects its share of ``n_samples``
        under its share of the ``max_attempts`` budget (rounded up, so
        the combined cap never shrinks below the sequential one)."""
        sizes = split_evenly(self.n_samples, n_shards)
        live = sum(1 for s in sizes if s)
        per_shard_cap = -(-self.max_attempts // max(1, live))
        shards: List[Engine] = []
        for size, seed in zip(sizes, seeds):
            if size == 0:
                continue
            shard = copy.copy(self)
            shard.n_samples = size
            shard.seed = seed
            shard.max_attempts = per_shard_cap
            shards.append(shard)
        return shards

    def infer(self, program: Program) -> InferenceResult:
        if has_soft_conditioning(program):
            raise UnsupportedProgramError(
                "rejection sampling requires hard observations only"
            )
        from ..obs.recorder import current_recorder

        vectorized = self._vectorize(program)
        if vectorized is not None:
            return self._infer_numpy(vectorized)

        rng = random.Random(self.seed)
        result = InferenceResult()
        rec = current_recorder()
        start = time.perf_counter()
        # The accept loop draws in chunks sized by the running
        # acceptance-rate estimate (Laplace-smoothed, 25% headroom)
        # instead of re-checking the target and the attempt budget
        # before every single forward run.  Each attempt consumes the
        # RNG exactly as the one-at-a-time loop did and the chunk
        # breaks the moment the target is reached, so the accepted
        # sample stream, the attempt count, and the exhaustion error
        # are all identical to the historical per-draw loop.
        samples = result.samples
        target = self.n_samples
        run_one = self._run_program
        options = self.executor_options
        attempts = 0
        statements = 0
        if rec.enabled:
            # Baseline report for the live snapshot layer (first chunk
            # can take a while on low-acceptance programs).
            rec.progress(self.name, 0, target, attempts=0, accept_rate=0.0)
        while len(samples) < target:
            if attempts >= self.max_attempts:
                result.statements_executed = statements
                raise InferenceError(
                    f"rejection sampler exhausted {self.max_attempts} attempts "
                    f"with only {len(samples)} accepted samples"
                )
            remaining = target - len(samples)
            rate = (len(samples) + 1.0) / (attempts + 2.0)
            chunk = min(
                self.max_attempts - attempts,
                max(remaining, int(remaining / rate * 1.25) + 1),
            )
            for _ in range(chunk):
                attempts += 1
                try:
                    run = run_one(program, rng, options=options)
                except NonTerminatingRun:
                    continue
                statements += run.statements_executed
                if not run.blocked:
                    samples.append(run.value)
                    if len(samples) >= target:
                        break
            if rec.enabled:
                rec.progress(
                    self.name,
                    len(samples),
                    target,
                    attempts=attempts,
                    accept_rate=len(samples) / max(1, attempts),
                )
        result.statements_executed = statements
        result.n_proposals = attempts
        result.n_accepted = len(samples)
        result.elapsed_seconds = time.perf_counter() - start
        if rec.enabled:
            rec.counter("engine.proposals", attempts)
            rec.counter("engine.samples", len(samples))
        return result

    def _infer_numpy(self, vectorized) -> InferenceResult:
        """Array-backend accept loop: whole chunks of lanes advance per
        numpy step; blocked lanes are simply filtered out by the
        ``_alive`` mask.  Attempt accounting stops at the lane that
        completes the target (as the scalar loop's mid-chunk ``break``
        does), so the exhaustion error fires under the same budget."""
        import numpy as np

        from ..obs.recorder import current_recorder
        from ..runtime.parallel import numpy_generator

        gen = numpy_generator(self.seed, "rejection")
        rec = current_recorder()
        result = InferenceResult()
        samples = result.samples
        target = self.n_samples
        attempts = 0
        statements = 0
        start = time.perf_counter()
        if rec.enabled:
            rec.progress(self.name, 0, target, attempts=0, accept_rate=0.0)
        while len(samples) < target:
            if attempts >= self.max_attempts:
                result.statements_executed = statements
                raise InferenceError(
                    f"rejection sampler exhausted {self.max_attempts} attempts "
                    f"with only {len(samples)} accepted samples"
                )
            remaining = target - len(samples)
            if self.batch_size is not None:
                chunk = self.batch_size
            else:
                rate = (len(samples) + 1.0) / (attempts + 2.0)
                chunk = min(
                    max(remaining, int(remaining / rate * 1.25) + 1), 16384
                )
            chunk = min(chunk, self.max_attempts - attempts)
            batch = vectorized.run_batch(gen, chunk)
            accepted = np.flatnonzero(~batch.blocked)[:remaining]
            # Lanes past the one that fills the target were never
            # "attempted" in the scalar accounting.
            cut = chunk if accepted.size < remaining else int(accepted[-1]) + 1
            attempts += cut
            statements += int(batch.statements[:cut].sum())
            value = batch.value
            if isinstance(value, tuple):
                columns = [np.asarray(v)[accepted] for v in value]
                for j in range(accepted.size):
                    samples.append(tuple(c[j].item() for c in columns))
            else:
                samples.extend(v.item() for v in np.asarray(value)[accepted])
            if rec.enabled:
                rec.progress(
                    self.name,
                    len(samples),
                    target,
                    attempts=attempts,
                    accept_rate=len(samples) / max(1, attempts),
                )
        result.statements_executed = statements
        result.n_proposals = attempts
        result.n_accepted = len(samples)
        result.elapsed_seconds = time.perf_counter() - start
        if rec.enabled:
            rec.counter("engine.proposals", attempts)
            rec.counter("engine.samples", len(samples))
        return result
