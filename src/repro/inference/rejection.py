"""Rejection sampling: run the program forward, keep runs that satisfy
every hard observation.

This implements the operational reading of the paper's semantics
directly (blocked runs "are not permitted to happen") and serves as a
slow-but-obviously-correct reference sampler.  Programs with soft
conditioning are rejected — their weights are unbounded densities, so
plain accept/reject does not apply; use likelihood weighting or MH.
"""

from __future__ import annotations

import random
import time

from ..core.ast import Program
from ..semantics.executor import ExecutorOptions, NonTerminatingRun
from .base import Engine, InferenceError, InferenceResult, UnsupportedProgramError
from .features import has_soft_conditioning

__all__ = ["RejectionSampler"]


class RejectionSampler(Engine):
    """Collect ``n_samples`` accepted forward runs.

    ``max_attempts`` caps the total number of forward runs to protect
    against near-zero acceptance probability.
    """

    name = "rejection"

    def __init__(
        self,
        n_samples: int = 10_000,
        seed: int = 0,
        max_attempts: int = 10_000_000,
        executor_options: ExecutorOptions = ExecutorOptions(),
        compiled: bool = False,
    ) -> None:
        if n_samples <= 0:
            raise ValueError("n_samples must be positive")
        self.n_samples = n_samples
        self.seed = seed
        self.max_attempts = max_attempts
        self.executor_options = executor_options
        self.compiled = compiled

    def infer(self, program: Program) -> InferenceResult:
        if has_soft_conditioning(program):
            raise UnsupportedProgramError(
                "rejection sampling requires hard observations only"
            )
        rng = random.Random(self.seed)
        result = InferenceResult()
        start = time.perf_counter()
        attempts = 0
        while len(result.samples) < self.n_samples:
            if attempts >= self.max_attempts:
                raise InferenceError(
                    f"rejection sampler exhausted {self.max_attempts} attempts "
                    f"with only {len(result.samples)} accepted samples"
                )
            attempts += 1
            try:
                run = self._run_program(
                    program, rng, options=self.executor_options
                )
            except NonTerminatingRun:
                continue
            result.statements_executed += run.statements_executed
            if not run.blocked:
                result.samples.append(run.value)
        result.n_proposals = attempts
        result.n_accepted = len(result.samples)
        result.elapsed_seconds = time.perf_counter() - start
        return result
