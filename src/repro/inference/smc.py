"""Sequential Monte Carlo (a particle filter over program runs).

Particles run the program in lockstep, pausing at every conditioning
point (hard ``observe``, soft ``observe(Dist, v)``, ``factor``).  At
each pause the particle weights absorb the conditioning and, when the
effective sample size collapses, the population is resampled
systematically.  This is the standard PPL SMC construction (Wood et
al., 2014) and handles constraint-heavy programs (TrueSkill chains)
that plain rejection cannot initialize.

Cloning a live Python generator is impossible, so resampled particles
are *replayed*: each particle records its random choices (a trace),
and a clone re-executes the program reusing that trace — deterministic
up to the pause point — before continuing fresh.
"""

from __future__ import annotations

import copy
import math
import random
import time
from typing import Dict, Iterator, List, Optional, Sequence

from ..core.ast import (
    Assign,
    Block,
    Decl,
    Factor,
    If,
    Observe,
    ObserveSample,
    Program,
    Sample,
    Skip,
    Stmt,
    While,
)
from ..dists import make_distribution
from ..semantics.executor import NonTerminatingRun
from ..semantics.trace import Address, Trace, TraceEntry
from ..semantics.values import State, Value, default_value, eval_dist_args, eval_expr
from .base import Engine, InferenceError, InferenceResult

__all__ = ["SMCSampler"]

NEG_INF = float("-inf")


class _NonTerminating(Exception):
    pass


class _Run:
    """One particle's execution context."""

    def __init__(
        self,
        program: Program,
        rng: random.Random,
        base_trace: Optional[Trace],
        max_loop_iterations: int,
    ) -> None:
        self.state: State = {}
        self.trace: Trace = {}
        self.statements = 0
        self.value: Optional[Value] = None
        self._program = program
        self._rng = rng
        self._base = base_trace or {}
        self._max_loop = max_loop_iterations
        self._gen = self._run()

    def advance(self) -> Optional[float]:
        """Run to the next conditioning point; returns its log-weight
        increment, or None when the program finished."""
        try:
            return next(self._gen)
        except StopIteration:
            return None

    # -- interpreter -----------------------------------------------------------

    def _run(self) -> Iterator[float]:
        yield from self._exec(self._program.body, ())
        self.value = eval_expr(self._program.ret, self.state)

    def _exec(self, stmt: Stmt, address: Address) -> Iterator[float]:
        if isinstance(stmt, Skip):
            return
        if isinstance(stmt, Block):
            for i, s in enumerate(stmt.stmts):
                yield from self._exec(s, address + (i,))
            return
        self.statements += 1
        if isinstance(stmt, Decl):
            self.state[stmt.name] = default_value(stmt.type)
            return
        if isinstance(stmt, Assign):
            self.state[stmt.name] = eval_expr(stmt.expr, self.state)
            return
        if isinstance(stmt, Sample):
            dist = make_distribution(
                stmt.dist.name, eval_dist_args(stmt.dist, self.state)
            )
            entry = self._base.get(address)
            if entry is not None and entry.dist_name == stmt.dist.name:
                lp = dist.log_prob(entry.value)
                if lp != NEG_INF:
                    self.trace[address] = TraceEntry(
                        entry.value, lp, stmt.dist.name
                    )
                    self.state[stmt.name] = entry.value
                    return
            value = dist.sample(self._rng)
            self.trace[address] = TraceEntry(
                value, dist.log_prob(value), stmt.dist.name
            )
            self.state[stmt.name] = value
            return
        if isinstance(stmt, Observe):
            ok = eval_expr(stmt.cond, self.state) is True
            yield 0.0 if ok else NEG_INF
            return
        if isinstance(stmt, ObserveSample):
            dist = make_distribution(
                stmt.dist.name, eval_dist_args(stmt.dist, self.state)
            )
            yield dist.log_prob(eval_expr(stmt.value, self.state))
            return
        if isinstance(stmt, Factor):
            yield float(eval_expr(stmt.log_weight, self.state))
            return
        if isinstance(stmt, If):
            if eval_expr(stmt.cond, self.state) is True:
                yield from self._exec(stmt.then_branch, address + ("T",))
            else:
                yield from self._exec(stmt.else_branch, address + ("E",))
            return
        if isinstance(stmt, While):
            iteration = 0
            while eval_expr(stmt.cond, self.state) is True:
                if iteration >= self._max_loop:
                    raise _NonTerminating()
                yield from self._exec(stmt.body, address + ("W", iteration))
                iteration += 1
                self.statements += 1
            return
        raise TypeError(f"not a statement: {stmt!r}")


class _Particle:
    __slots__ = ("run", "log_weight", "barriers", "alive", "finished", "lineage")

    def __init__(self, run: _Run, lineage: int = 0) -> None:
        self.run = run
        self.log_weight = 0.0
        self.barriers = 0
        self.alive = True
        self.finished = False
        #: Index of the root ancestor (clones inherit it): the count of
        #: distinct lineages at the end measures genealogy collapse.
        self.lineage = lineage


class SMCSampler(Engine):
    """Sequential Monte Carlo over PROB programs.

    ``n_particles`` particles advance between conditioning points;
    systematic resampling triggers when the effective sample size
    drops below ``ess_threshold * n_particles``.  The result carries
    the final weighted population as weighted samples.
    """

    name = "smc"
    parallel_unit = "islands"

    def __init__(
        self,
        n_particles: int = 1_000,
        seed: int = 0,
        ess_threshold: float = 0.5,
        max_loop_iterations: int = 1_000_000,
        compiled: "bool | str" = False,
    ) -> None:
        if n_particles <= 0:
            raise ValueError("n_particles must be positive")
        if not 0.0 <= ess_threshold <= 1.0:
            raise ValueError("ess_threshold must be in [0, 1]")
        self.n_particles = n_particles
        self.seed = seed
        self.ess_threshold = ess_threshold
        self.max_loop_iterations = max_loop_iterations
        self.compiled = compiled

    def shard(self, n_shards: int, seeds: Sequence[int]) -> List[Engine]:
        """Particle islands: each shard runs an independent SMC pass
        over its share of the particle population (its own resampling
        schedule included)."""
        from .base import split_evenly

        shards: List[Engine] = []
        for size, seed in zip(split_evenly(self.n_particles, n_shards), seeds):
            if size == 0:
                continue
            shard = copy.copy(self)
            shard.n_particles = size
            shard.seed = seed
            shards.append(shard)
        return shards

    def merge(self, parts: Sequence[InferenceResult]) -> InferenceResult:
        """Combine island populations.

        Each island reports weights relative to its own best particle
        (``exp(lw - max_lw)``), so raw concatenation would let an
        island's internal scale distort the pooled estimate.  Islands
        of equal particle share are equally-weighted estimators of the
        same posterior, so each island's weights are renormalized to
        sum to its particle count before pooling (the standard
        island-particle-filter merge when per-island evidence estimates
        are not tracked)."""
        merged = InferenceResult.merge(parts)
        merged.weights = []
        for p in parts:
            assert p.weights is not None
            total = sum(p.weights)
            share = p.n_proposals if p.n_proposals > 0 else len(p.weights)
            merged.weights.extend(w / total * share for w in p.weights)
        return merged

    def _new_run(
        self,
        program: Program,
        rng: random.Random,
        base_trace: Optional[Trace],
    ):
        """A fresh particle execution context, interpreted or compiled.
        Both speak the same protocol (``advance`` / ``trace`` /
        ``statements`` / ``value``) and consume the RNG identically."""
        if self.compiled:
            from ..semantics.compiled import CompiledRun, compile_program

            return CompiledRun(
                compile_program(program), rng, base_trace, self.max_loop_iterations
            )
        return _Run(program, rng, base_trace, self.max_loop_iterations)

    def infer(self, program: Program) -> InferenceResult:
        from ..obs.recorder import current_recorder

        vectorized = self._vectorize(program)
        if vectorized is not None:
            return self._infer_numpy(vectorized)

        rng = random.Random(self.seed)
        result = InferenceResult(weights=[])
        rec = current_recorder()
        start = time.perf_counter()
        self._resamples = 0
        barriers = 0
        population = [
            _Particle(self._new_run(program, rng, None), lineage=i)
            for i in range(self.n_particles)
        ]
        if rec.enabled:
            # Baseline report for the live snapshot layer before the
            # first barrier completes.
            rec.progress(
                self.name,
                0,
                self.n_particles,
                live=self.n_particles,
                barriers=0,
                resamples=0,
            )

        while True:
            # Advance every live, unfinished particle to its next
            # barrier (or the end of the program).
            running = [p for p in population if not p.finished]
            if not running:
                break
            for p in running:
                try:
                    delta = p.run.advance()
                except (_NonTerminating, NonTerminatingRun):
                    p.alive = False
                    continue
                result.statements_executed += p.run.statements
                p.run.statements = 0
                if delta is None:
                    p.finished = True
                    continue
                p.barriers += 1
                p.log_weight += delta
                if p.log_weight == NEG_INF:
                    p.alive = False
            population = [p for p in population if p.alive]
            if not population:
                break
            # Resample over the *whole* population — finished particles
            # included.  Excluding them would let the still-running
            # subset (e.g. one branch of an ``if`` holding the only
            # remaining observes) be replenished to full size, inflating
            # its posterior mass relative to runs that already ended.
            if any(not p.finished for p in population):
                population = self._maybe_resample(program, rng, population)
            barriers += 1
            if rec.enabled:
                rec.progress(
                    self.name,
                    sum(1 for p in population if p.finished),
                    self.n_particles,
                    live=sum(1 for p in population if not p.finished),
                    barriers=barriers,
                    resamples=self._resamples,
                )

        finished = [p for p in population if p.finished]
        if not finished:
            raise InferenceError("every SMC particle died (zero-mass program?)")
        max_lw = max(p.log_weight for p in finished)
        assert result.weights is not None
        for p in finished:
            result.samples.append(p.run.value)
            result.weights.append(math.exp(p.log_weight - max_lw))
            # Clones of finished particles replay to completion without
            # a later advance to collect their statement count.
            result.statements_executed += p.run.statements
            p.run.statements = 0
        result.n_proposals = self.n_particles
        result.n_accepted = len(finished)
        result.lineages = len({p.lineage for p in finished})
        result.elapsed_seconds = time.perf_counter() - start
        if sum(result.weights) <= 0.0:
            raise InferenceError("all SMC particle weights are zero")
        if rec.enabled:
            rec.progress(
                self.name,
                self.n_particles,
                self.n_particles,
                resamples=self._resamples,
            )
            rec.counter("engine.proposals", result.n_proposals)
            rec.counter("engine.samples", len(result.samples))
            rec.counter("smc.resamples", self._resamples)
        return result

    def _infer_numpy(self, vectorized) -> InferenceResult:
        """Array-backend SMC: the whole population advances barrier by
        barrier through one batched generator, weights update as
        ``(batch,)`` arrays, and systematic resampling is a single
        ``searchsorted`` gather sent back into the generator (no trace
        replay — clones copy ancestor state by indexing).

        One documented divergence from the scalar engine: lanes share
        the program's *static* barrier schedule (an ``if`` holding an
        observe pauses every lane, contributing a zero delta on lanes
        that took the other arm), so the resampling points are the
        static conditioning statements rather than each particle's own
        dynamic barrier sequence.
        """
        import numpy as np

        from ..obs.recorder import current_recorder
        from ..runtime.parallel import numpy_generator

        gen = numpy_generator(self.seed, "smc")
        rec = current_recorder()
        result = InferenceResult(weights=[])
        assert result.weights is not None
        start = time.perf_counter()
        self._resamples = 0
        barriers = 0
        target = self.n_particles
        particles = vectorized.particles(gen, target)
        log_weights = np.zeros(target, dtype=np.float64)
        lineage = np.arange(target)
        ancestors: Optional[np.ndarray] = None
        if rec.enabled:
            rec.progress(
                self.name, 0, target, live=target, barriers=0, resamples=0
            )
        while True:
            delta = particles.advance(ancestors)
            ancestors = None
            if delta is None:
                break
            barriers += 1
            log_weights = log_weights + delta
            dead = np.isneginf(log_weights)
            if dead.all():
                raise InferenceError(
                    "every SMC particle died (zero-mass program?)"
                )
            with np.errstate(over="ignore"):
                weights = np.exp(log_weights - log_weights.max())
            total = float(weights.sum())
            ess = total * total / float((weights * weights).sum())
            # Same trigger as the scalar engine: weight degeneracy or
            # any hard-observe death (replenish back to full size).
            if ess < self.ess_threshold * target or dead.any():
                self._resamples += 1
                positions = (gen.random(target) + np.arange(target)) / target
                cumulative = np.cumsum(weights / total)
                ancestors = np.minimum(
                    np.searchsorted(cumulative, positions, side="left"),
                    target - 1,
                )
                log_weights = np.zeros(target, dtype=np.float64)
                lineage = lineage[ancestors]
            if rec.enabled:
                rec.progress(
                    self.name,
                    0,
                    target,
                    live=int(target - dead.sum()),
                    barriers=barriers,
                    resamples=self._resamples,
                )
        final = particles.finished_result()
        result.statements_executed += int(final.statements.sum())
        keep = np.flatnonzero(~np.isneginf(log_weights))
        if keep.size == 0:
            raise InferenceError("every SMC particle died (zero-mass program?)")
        with np.errstate(over="ignore"):
            weights = np.exp(log_weights[keep] - log_weights[keep].max())
        value = final.value
        if isinstance(value, tuple):
            columns = [np.asarray(v)[keep] for v in value]
            for j in range(keep.size):
                result.samples.append(tuple(c[j].item() for c in columns))
        else:
            result.samples.extend(v.item() for v in np.asarray(value)[keep])
        result.weights.extend(weights.tolist())
        result.n_proposals = target
        result.n_accepted = keep.size
        result.lineages = int(np.unique(lineage[keep]).size)
        result.elapsed_seconds = time.perf_counter() - start
        if sum(result.weights) <= 0.0:
            raise InferenceError("all SMC particle weights are zero")
        if rec.enabled:
            rec.progress(self.name, target, target, resamples=self._resamples)
            rec.counter("engine.proposals", result.n_proposals)
            rec.counter("engine.samples", len(result.samples))
            rec.counter("smc.resamples", self._resamples)
        return result

    # -- resampling ---------------------------------------------------------------

    def _maybe_resample(
        self,
        program: Program,
        rng: random.Random,
        particles: List[_Particle],
    ) -> List[_Particle]:
        target = self.n_particles
        max_lw = max(p.log_weight for p in particles)
        weights = [math.exp(p.log_weight - max_lw) for p in particles]
        total = sum(weights)
        ess = total * total / sum(w * w for w in weights)
        # Resample when weights degenerate *or* hard observes killed
        # part of the population (replenish back to full size —
        # finished particles stay in the pool, so mere completion
        # never shrinks it).
        if ess >= self.ess_threshold * target and len(particles) == target:
            return particles
        self._resamples = getattr(self, "_resamples", 0) + 1
        # Systematic resampling back to the full population size.
        positions = [(rng.random() + i) / target for i in range(target)]
        cumulative = 0.0
        chosen: List[int] = []
        idx = 0
        for i, w in enumerate(weights):
            cumulative += w / total
            while idx < target and positions[idx] <= cumulative:
                chosen.append(i)
                idx += 1
        while len(chosen) < target:
            chosen.append(len(particles) - 1)
        out: List[_Particle] = []
        used_original = set()
        for i in chosen:
            source = particles[i]
            if i not in used_original:
                used_original.add(i)
                source.log_weight = 0.0
                out.append(source)
            else:
                out.append(self._clone(program, rng, source))
        return out

    def _clone(
        self, program: Program, rng: random.Random, source: _Particle
    ) -> _Particle:
        """Replay the source's trace up to its barrier count (to
        completion for finished sources), then let the clone diverge
        with fresh randomness."""
        run = self._new_run(program, rng, dict(source.run.trace))
        clone = _Particle(run, lineage=source.lineage)
        for _ in range(source.barriers):
            delta = run.advance()
            if delta is None:
                raise AssertionError("replay finished before source barrier")
        if source.finished:
            if run.advance() is not None:
                raise AssertionError("replay outlived its finished source")
            clone.finished = True
        # Replay work is real work; it stays in run.statements and is
        # picked up by the next accounting pass.
        clone.barriers = source.barriers
        clone.log_weight = 0.0
        return clone
