"""Exact enumeration as an inference engine (finite discrete programs
only) — wraps :mod:`repro.semantics.exact` in the common engine API."""

from __future__ import annotations

import time

from ..core.ast import Program
from ..semantics.exact import ExactEngineError, ExactOptions, exact_inference
from .base import Engine, InferenceResult, UnsupportedProgramError

__all__ = ["EnumerationEngine"]


class EnumerationEngine(Engine):
    """Compute the output distribution exactly."""

    name = "enumeration"

    def __init__(self, options: ExactOptions = ExactOptions()) -> None:
        self.options = options

    def infer(self, program: Program) -> InferenceResult:
        start = time.perf_counter()
        try:
            res = exact_inference(program, self.options)
        except ExactEngineError as exc:
            raise UnsupportedProgramError(str(exc)) from exc
        return InferenceResult(
            exact=res.distribution,
            elapsed_seconds=time.perf_counter() - start,
        )
