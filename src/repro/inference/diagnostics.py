"""MCMC convergence diagnostics: split-R̂, autocorrelation, and a
summary helper.

These supplement the Figure-19 KL curves: R̂ near 1 across chains on
the *sliced* program with fewer samples is the practitioner-facing
form of "sliced programs converge faster".
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass
from typing import List, Sequence

from .base import InferenceResult, effective_sample_size

__all__ = [
    "split_r_hat",
    "autocorrelation",
    "ChainSummary",
    "summarize_chains",
    "cross_chain_diagnostics",
]


def split_r_hat(chains: Sequence[Sequence[float]]) -> float:
    """Gelman–Rubin split-R̂ over two or more chains.

    Each chain is split in half (catching within-chain drift), then
    the classic between/within variance ratio is computed.  Values
    near 1 indicate convergence; > 1.05 is the usual alarm threshold.
    """
    if len(chains) < 1:
        raise ValueError("need at least one chain")
    halves: List[List[float]] = []
    for chain in chains:
        n = len(chain)
        if n < 4:
            raise ValueError("chains must have at least 4 samples")
        mid = n // 2
        halves.append(list(chain[:mid]))
        halves.append(list(chain[mid : 2 * mid]))
    m = len(halves)
    n = min(len(h) for h in halves)
    halves = [h[:n] for h in halves]
    means = [sum(h) / n for h in halves]
    grand = sum(means) / m
    b = n / (m - 1) * sum((mu - grand) ** 2 for mu in means)
    w = (
        sum(sum((x - mu) ** 2 for x in h) / (n - 1) for h, mu in zip(halves, means))
        / m
    )
    if w == 0.0:
        return 1.0
    var_plus = (n - 1) / n * w + b / n
    return math.sqrt(var_plus / w)


def autocorrelation(samples: Sequence[float], max_lag: int = 50) -> List[float]:
    """Normalized autocorrelation at lags ``0..max_lag``."""
    n = len(samples)
    if n < 2:
        raise ValueError("need at least two samples")
    mean = sum(samples) / n
    centered = [s - mean for s in samples]
    var = sum(c * c for c in centered) / n
    if var == 0.0:
        return [1.0] + [0.0] * min(max_lag, n - 1)
    out = []
    for lag in range(min(max_lag, n - 1) + 1):
        acov = sum(centered[i] * centered[i + lag] for i in range(n - lag)) / n
        out.append(acov / var)
    return out


@dataclass(frozen=True)
class ChainSummary:
    """Cross-chain summary statistics."""

    mean: float
    sd: float
    ess: float
    r_hat: float
    n_chains: int
    n_samples: int

    def converged(self, threshold: float = 1.05) -> bool:
        return self.r_hat < threshold


def summarize_chains(chains: Sequence[Sequence[float]]) -> ChainSummary:
    """Pooled mean/sd, per-chain-summed ESS, and split-R̂."""
    pooled = [x for chain in chains for x in chain]
    if not pooled:
        raise ValueError("no samples")
    n = len(pooled)
    mean = sum(pooled) / n
    var = sum((x - mean) ** 2 for x in pooled) / max(1, n - 1)
    ess = sum(effective_sample_size(list(chain)) for chain in chains)
    return ChainSummary(
        mean=mean,
        sd=math.sqrt(var),
        ess=ess,
        r_hat=split_r_hat(chains),
        n_chains=len(chains),
        n_samples=n,
    )


def cross_chain_diagnostics(result: InferenceResult) -> ChainSummary:
    """Chain diagnostics for a (possibly parallel-merged) result.

    A result merged by the parallel runtime carries its per-worker
    chains (``result.chains``), giving a genuine multi-chain split-R̂
    — independent seeds, independent initializations.  Booleans are
    summarized as 0/1.

    Unlike the strict :func:`split_r_hat` / :func:`summarize_chains`
    primitives, this entry point is meant for report code that must
    not die on a degenerate run, so the edge cases degrade instead of
    raising: a single (sequential) chain reports ``r_hat = nan``, a
    zero-variance result (every sample identical — e.g. a chain stuck
    at its initialization) reports ``r_hat = nan`` and ``ess = 0.0``,
    and chains too short to split report ``r_hat = nan``.  Each case
    emits a :class:`RuntimeWarning` saying why.
    """
    raw = result.chains if result.chains else [result.samples]
    chains = [[float(x) for x in chain] for chain in raw]
    pooled = [x for chain in chains for x in chain]
    if not pooled:
        raise ValueError("no samples")
    n = len(pooled)
    mean = sum(pooled) / n
    var = sum((x - mean) ** 2 for x in pooled) / max(1, n - 1)
    nan = float("nan")
    if var == 0.0:
        warnings.warn(
            "cross_chain_diagnostics: all samples identical "
            "(zero variance); R-hat is undefined and ESS is 0",
            RuntimeWarning,
            stacklevel=2,
        )
        return ChainSummary(
            mean=mean,
            sd=0.0,
            ess=0.0,
            r_hat=nan,
            n_chains=len(chains),
            n_samples=n,
        )
    ess = sum(effective_sample_size(chain) for chain in chains)
    if len(chains) < 2:
        warnings.warn(
            "cross_chain_diagnostics: single chain; cross-chain R-hat "
            "is undefined (run with n_workers > 1 for a genuine "
            "multi-chain diagnostic)",
            RuntimeWarning,
            stacklevel=2,
        )
        r_hat = nan
    else:
        try:
            r_hat = split_r_hat(chains)
        except (ValueError, ZeroDivisionError) as exc:
            warnings.warn(
                f"cross_chain_diagnostics: split R-hat unavailable "
                f"({exc})",
                RuntimeWarning,
                stacklevel=2,
            )
            r_hat = nan
    return ChainSummary(
        mean=mean,
        sd=math.sqrt(var),
        ess=ess,
        r_hat=r_hat,
        n_chains=len(chains),
        n_samples=n,
    )
