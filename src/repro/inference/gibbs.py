"""Gibbs sampling on compiled Bayesian networks.

For discrete, loop-free programs we can do better than trace MH:
compile to a Bayesian network (:mod:`repro.bayesnet.compile`) and run
a systematic-scan Gibbs sampler over the *stochastic* nodes.

Deterministic nodes (every CPT row a point mass — SSA merge
assignments, boolean combinations like ``phoneRings = john || mary``)
are not sampled: treating them as state would freeze the chain (a
parent and its deterministic child could never flip together).
Instead they are functionally *propagated*: when a stochastic node
tries a candidate value, all deterministic descendants are recomputed
in topological order and the candidate is weighted by the full
conditional of the remaining stochastic/evidence nodes.

This engine demonstrates that the SLI transformation benefits *any*
downstream inference algorithm: a smaller program compiles to a
smaller network, and every Gibbs sweep touches fewer nodes.
"""

from __future__ import annotations

import copy
import random
import time
from typing import Dict, List, Sequence, Set

from ..bayesnet.compile import CompileError, compile_program
from ..bayesnet.network import BayesNet
from ..core.ast import Program
from ..semantics.values import Value
from .base import (
    Engine,
    InferenceResult,
    InitializationError,
    UnsupportedProgramError,
)

__all__ = ["GibbsSampler"]


def _sample_row(dist: Dict[Value, float], rng: random.Random) -> Value:
    """Draw from a CPT row (a value -> probability mapping)."""
    u = rng.random()
    acc = 0.0
    last = None
    for value, p in dist.items():
        acc += p
        last = value
        if u <= acc:
            return value
    assert last is not None, "empty CPT row"
    return last


def _is_deterministic(net: BayesNet, name: str) -> bool:
    return all(len(row) == 1 for row in net.nodes[name].cpt.values())


def _is_mixed(net: BayesNet, name: str) -> bool:
    """Some CPT rows are point masses, others are not — the signature
    of SSA merge nodes (``sample in one branch, copy in the other``)."""
    rows = net.nodes[name].cpt.values()
    return any(len(r) == 1 for r in rows) and any(len(r) > 1 for r in rows)


def _decouple_mixed(net: BayesNet) -> BayesNet:
    """Split every mixed node ``m`` into a pure-stochastic source
    ``m$src`` plus a deterministic select.

    ``m$src`` carries ``m``'s stochastic rows (uniform placeholder on
    the point-mass contexts, where its value is unused); ``m`` becomes
    fully deterministic: the old point value on point rows, a copy of
    ``m$src`` otherwise.  The joint over the original variables is
    unchanged, and the resulting network has only pure-stochastic and
    deterministic nodes — which keeps single-site Gibbs ergodic (a
    parent and a copy-mode merge node can now flip together through
    propagation).
    """
    out = BayesNet()
    for name in net.order:
        node = net.nodes[name]
        if not _is_mixed(net, name):
            out.add_node(name, node.parents, node.support, node.cpt)
            continue
        src = f"{name}$src"
        uniform = {v: 1.0 / len(node.support) for v in node.support}
        src_cpt = {
            key: (dict(row) if len(row) > 1 else dict(uniform))
            for key, row in node.cpt.items()
        }
        out.add_node(src, node.parents, node.support, src_cpt)
        select_cpt = {}
        for key, row in node.cpt.items():
            if len(row) == 1:
                point = next(iter(row))
                for v in node.support:
                    select_cpt[key + (v,)] = {point: 1.0}
            else:
                for v in node.support:
                    select_cpt[key + (v,)] = {v: 1.0}
        out.add_node(
            name, node.parents + (src,), node.support, select_cpt
        )
    return out


class GibbsSampler(Engine):
    """Systematic-scan Gibbs over the compiled network's stochastic
    nodes, with functional propagation of deterministic nodes."""

    name = "gibbs"
    parallel_unit = "chains"

    def __init__(
        self,
        n_samples: int = 5_000,
        burn_in: int = 500,
        thin: int = 1,
        seed: int = 0,
        max_init_attempts: int = 100_000,
    ) -> None:
        if n_samples <= 0:
            raise ValueError("n_samples must be positive")
        if thin <= 0:
            raise ValueError("thin must be positive")
        self.n_samples = n_samples
        self.burn_in = burn_in
        self.thin = thin
        self.seed = seed
        self.max_init_attempts = max_init_attempts

    def shard(self, n_shards: int, seeds: Sequence[int]) -> List[Engine]:
        """Independent Gibbs chains, each with a full burn-in and its
        share of the sample budget."""
        from .base import split_evenly

        shards: List[Engine] = []
        for size, seed in zip(split_evenly(self.n_samples, n_shards), seeds):
            if size == 0:
                continue
            shard = copy.copy(self)
            shard.n_samples = size
            shard.seed = seed
            shards.append(shard)
        return shards

    def infer(self, program: Program) -> InferenceResult:
        try:
            compiled = compile_program(program)
        except CompileError as exc:
            raise UnsupportedProgramError(str(exc)) from exc
        net = _decouple_mixed(compiled.net)
        evidence = dict(compiled.evidence)
        rng = random.Random(self.seed)
        result = InferenceResult()
        start = time.perf_counter()

        deterministic = {n for n in net.order if _is_deterministic(net, n)}
        # Evidence on a deterministic node constrains its ancestors
        # through the full-conditional weights below; evidence on a
        # stochastic node clamps it.
        free = [
            n
            for n in net.order
            if n not in evidence and n not in deterministic
        ]
        # Nodes whose conditional probability scores a state: all
        # stochastic nodes (free or evidence) plus deterministic
        # evidence nodes (0/1 indicator of consistency).
        scored = [
            n
            for n in net.order
            if n not in deterministic or n in evidence
        ]
        # Downstream deterministic nodes per free node, in topological
        # order (recomputed on every candidate evaluation).
        det_order = [n for n in net.order if n in deterministic]

        from ..obs.recorder import current_recorder

        rec = current_recorder()
        state = self._initialize(net, evidence, rng)
        total_sweeps = self.burn_in + self.n_samples * self.thin
        for sweep in range(total_sweeps):
            if rec.enabled and sweep % 16 == 0:
                rec.progress(
                    self.name, sweep, total_sweeps, free_nodes=len(free)
                )
            for node in free:
                self._resample(
                    net, node, state, evidence, deterministic, det_order,
                    scored, rng,
                )
                result.statements_executed += 1
            result.n_proposals += 1
            result.n_accepted += 1  # Gibbs always moves
            if sweep >= self.burn_in and (sweep - self.burn_in) % self.thin == 0:
                result.samples.append(state[compiled.query])
        result.elapsed_seconds = time.perf_counter() - start
        if rec.enabled:
            rec.progress(self.name, total_sweeps, total_sweeps, free_nodes=len(free))
            rec.counter("engine.proposals", result.n_proposals)
            rec.counter("engine.samples", len(result.samples))
        return result

    # -- internals -----------------------------------------------------------------

    def _initialize(
        self,
        net: BayesNet,
        evidence: Dict[str, Value],
        rng: random.Random,
    ) -> Dict[str, Value]:
        """Forward-sample until consistent with the evidence."""
        for _ in range(self.max_init_attempts):
            state: Dict[str, Value] = {}
            ok = True
            for name in net.order:
                node = net.nodes[name]
                parent_values = tuple(state[p] for p in node.parents)
                dist = node.dist_given(parent_values)
                value = _sample_row(dist, rng)
                if name in evidence:
                    if dist.get(evidence[name], 0.0) <= 0.0:
                        ok = False
                        break
                    value = evidence[name]
                state[name] = value
            if ok:
                return state
        raise InitializationError("no evidence-consistent initial state found")

    @staticmethod
    def _propagate(
        net: BayesNet,
        state: Dict[str, Value],
        evidence: Dict[str, Value],
        det_order: List[str],
    ) -> None:
        """Recompute all deterministic, non-evidence nodes from the
        current stochastic values."""
        for name in det_order:
            if name in evidence:
                continue
            node = net.nodes[name]
            parent_values = tuple(state[p] for p in node.parents)
            row = node.dist_given(parent_values)
            state[name] = next(iter(row))

    def _resample(
        self,
        net: BayesNet,
        node_name: str,
        state: Dict[str, Value],
        evidence: Dict[str, Value],
        deterministic: Set[str],
        det_order: List[str],
        scored: List[str],
        rng: random.Random,
    ) -> None:
        node = net.nodes[node_name]
        original = state[node_name]
        weights: Dict[Value, float] = {}
        for candidate in node.support:
            state[node_name] = candidate
            self._propagate(net, state, evidence, det_order)
            w = 1.0
            for name in scored:
                n = net.nodes[name]
                parent_values = tuple(state[p] for p in n.parents)
                w *= n.dist_given(parent_values).get(state[name], 0.0)
                if w <= 0.0:
                    break
            if w > 0.0:
                weights[candidate] = w
        if not weights:
            state[node_name] = original
            self._propagate(net, state, evidence, det_order)
            return
        state[node_name] = _sample_row(
            {k: v / sum(weights.values()) for k, v in weights.items()}, rng
        )
        self._propagate(net, state, evidence, det_order)
