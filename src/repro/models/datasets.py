"""Synthetic dataset generators for the continuous benchmarks.

The paper used real data (HIV immunity measurements, a chess
tournament, a Halo tournament); those datasets are not available, and
the slicing phenomenon depends only on the *structure* of which
observations connect to which returns (DESIGN.md §3), so we generate
synthetic data with matching shapes and sizes and fixed seeds for
reproducibility.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Tuple

__all__ = [
    "RegressionData",
    "regression_data",
    "HIVData",
    "hiv_data",
    "Tournament",
    "tournament_data",
    "TeamTournament",
    "team_tournament_data",
]


@dataclass(frozen=True)
class RegressionData:
    """Linear regression points ``y = w0 + w1 x + noise``."""

    xs: Tuple[float, ...]
    ys: Tuple[float, ...]
    true_w0: float
    true_w1: float


def regression_data(
    n_points: int = 1000, seed: int = 0, w0: float = 1.5, w1: float = 2.0
) -> RegressionData:
    """Points from the ground-truth line with unit Gaussian noise."""
    rng = random.Random(seed)
    xs = [round(rng.uniform(-3.0, 3.0), 4) for _ in range(n_points)]
    ys = [round(w0 + w1 * x + rng.gauss(0.0, 1.0), 4) for x in xs]
    return RegressionData(tuple(xs), tuple(ys), w0, w1)


@dataclass(frozen=True)
class HIVData:
    """Multilevel measurements: person index, time, value."""

    n_persons: int
    measurements: Tuple[Tuple[int, float, float], ...]
    true_intercepts: Tuple[float, ...]
    true_slopes: Tuple[float, ...]


def hiv_data(
    n_persons: int = 84, n_measurements: int = 369, seed: int = 0
) -> HIVData:
    """Per-person lines ``y = a_p + b_p t`` with noise; measurement
    count and person count match the paper's description (369
    measurements over 84 persons)."""
    rng = random.Random(seed)
    intercepts = [round(rng.gauss(4.0, 1.0), 4) for _ in range(n_persons)]
    slopes = [round(rng.gauss(-0.5, 0.25), 4) for _ in range(n_persons)]
    measurements: List[Tuple[int, float, float]] = []
    for k in range(n_measurements):
        p = k % n_persons  # round-robin: every person gets >= 4 points
        t = round(rng.uniform(0.0, 2.0), 4)
        y = round(intercepts[p] + slopes[p] * t + rng.gauss(0.0, 0.5), 4)
        measurements.append((p, t, y))
    return HIVData(n_persons, tuple(measurements), tuple(intercepts), tuple(slopes))


@dataclass(frozen=True)
class Tournament:
    """Game results ``(winner, loser)`` over players in divisions."""

    n_players: int
    n_divisions: int
    games: Tuple[Tuple[int, int], ...]
    true_skills: Tuple[float, ...]

    def division_of(self, player: int) -> int:
        return player % self.n_divisions


def tournament_data(
    n_players: int = 77,
    n_games: int = 2926,
    n_divisions: int = 7,
    seed: int = 0,
    skill_sd: float = 8.0,
    perf_sd: float = 4.0,
) -> Tournament:
    """A division-structured tournament: games pair players within the
    same division (player ``p`` plays in division ``p % n_divisions``);
    outcomes are sampled from latent ground-truth skills."""
    rng = random.Random(seed)
    skills = [round(rng.gauss(25.0, skill_sd), 4) for _ in range(n_players)]
    by_division: List[List[int]] = [[] for _ in range(n_divisions)]
    for p in range(n_players):
        by_division[p % n_divisions].append(p)
    games: List[Tuple[int, int]] = []
    for _ in range(n_games):
        division = rng.randrange(n_divisions)
        a, b = rng.sample(by_division[division], 2)
        perf_a = skills[a] + rng.gauss(0.0, perf_sd)
        perf_b = skills[b] + rng.gauss(0.0, perf_sd)
        games.append((a, b) if perf_a > perf_b else (b, a))
    return Tournament(n_players, n_divisions, tuple(games), tuple(skills))


@dataclass(frozen=True)
class TeamTournament:
    """Team games ``(winning team, losing team)`` with player rosters."""

    rosters: Tuple[Tuple[int, ...], ...]
    n_groups: int
    games: Tuple[Tuple[int, int], ...]
    true_skills: Tuple[float, ...]

    @property
    def n_players(self) -> int:
        return sum(len(r) for r in self.rosters)

    def group_of(self, team: int) -> int:
        return team % self.n_groups


def team_tournament_data(
    n_teams: int = 31,
    max_players_per_team: int = 4,
    n_games: int = 200,
    n_groups: int = 6,
    seed: int = 0,
    skill_sd: float = 8.0,
    perf_sd: float = 4.0,
) -> TeamTournament:
    """A group-structured team tournament (Halo): teams of up to
    ``max_players_per_team`` players; a team's performance is the sum
    of its members' noisy performances."""
    rng = random.Random(seed)
    rosters: List[Tuple[int, ...]] = []
    next_player = 0
    for _ in range(n_teams):
        size = rng.randint(2, max_players_per_team)
        rosters.append(tuple(range(next_player, next_player + size)))
        next_player += size
    skills = [round(rng.gauss(25.0, skill_sd), 4) for _ in range(next_player)]
    by_group: List[List[int]] = [[] for _ in range(n_groups)]
    for t in range(n_teams):
        by_group[t % n_groups].append(t)
    games: List[Tuple[int, int]] = []
    attempts = 0
    while len(games) < n_games and attempts < 50 * n_games:
        attempts += 1
        group = rng.randrange(n_groups)
        if len(by_group[group]) < 2:
            continue
        a, b = rng.sample(by_group[group], 2)
        perf_a = sum(skills[p] + rng.gauss(0.0, perf_sd) for p in rosters[a])
        perf_b = sum(skills[p] + rng.gauss(0.0, perf_sd) for p in rosters[b])
        games.append((a, b) if perf_a > perf_b else (b, a))
    return TeamTournament(
        tuple(rosters), n_groups, tuple(games), tuple(skills)
    )
