"""The Table-1 benchmark registry.

Each entry provides the benchmark at two scales:

* ``paper()`` — the paper's stated sizes (1000 regression points, 84
  HIV persons / 369 measurements, 77 chess players / 2926 games, 31
  Halo teams).  Used for the Table-1 slice-size statistics, where only
  the (fast) analysis runs.
* ``bench()`` — a scaled-down instance used for the *timed* Figure-18
  runs, so the benchmark suite finishes in minutes while preserving
  every structural property (who is observed, who is returned, which
  fraction is sliceable).

``engines`` lists which Figure-18 columns run this benchmark; the
"church" column omits Bayesian Linear Regression (Gamma unsupported),
matching the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from ..core.ast import Program
from .burglar import burglar_alarm_model
from .hiv import hiv_model
from .linreg import linreg_model
from .noisy_or import noisy_or_model
from .paper_examples import example3, example5
from .trueskill import chess_model, halo_model

__all__ = ["BenchmarkSpec", "TABLE1", "benchmark", "benchmark_names"]


@dataclass(frozen=True)
class BenchmarkSpec:
    """One Table-1 row."""

    name: str
    description: str
    paper: Callable[[], Program]
    bench: Callable[[], Program]
    #: Figure-18 engine columns that include this benchmark.
    engines: Tuple[str, ...]
    #: Small enough for the exact-enumeration oracle?
    exact_ok: bool


def _noisy_or_paper() -> Program:
    return noisy_or_model(n_layers=5, width=5, seed=1)


def _noisy_or_bench() -> Program:
    return noisy_or_model(n_layers=3, width=3, seed=1)


def _linreg_bench() -> Program:
    return linreg_model(n_points=120, n_observed=12, seed=0)


def _hiv_bench() -> Program:
    return hiv_model(n_persons=12, n_measurements=60, n_returned=2, seed=0)


def _chess_bench() -> Program:
    return chess_model(
        n_players=12, n_games=36, n_divisions=3, n_returned=2, seed=0
    )


def _halo_bench() -> Program:
    return halo_model(
        n_teams=8, max_players_per_team=3, n_games=16, n_groups=4, seed=0
    )


TABLE1: List[BenchmarkSpec] = [
    BenchmarkSpec(
        name="Ex3",
        description="Example 3 in Figure 2 (student model, return s)",
        paper=example3,
        bench=example3,
        engines=("r2", "church", "infernet"),
        exact_ok=True,
    ),
    BenchmarkSpec(
        name="Ex5",
        description="Example 5 in Figure 4(a) (observe g, return l)",
        paper=example5,
        bench=example5,
        engines=("r2", "church", "infernet"),
        exact_ok=True,
    ),
    BenchmarkSpec(
        name="NoisyOR",
        description="Layered noisy-or DAG, return a subset node",
        paper=_noisy_or_paper,
        bench=_noisy_or_bench,
        engines=("r2", "church", "infernet"),
        exact_ok=False,
    ),
    BenchmarkSpec(
        name="BurglarAlarm",
        description="Pearl's burglary model; observed alarm and radio",
        paper=burglar_alarm_model,
        bench=burglar_alarm_model,
        engines=("r2", "church", "infernet"),
        exact_ok=True,
    ),
    BenchmarkSpec(
        name="BayesianLinearRegression",
        description="Bayesian linear regression, 1000 points, 100 observed",
        paper=lambda: linreg_model(n_points=1000, n_observed=100, seed=0),
        bench=_linreg_bench,
        engines=("r2", "infernet"),  # Church: no Gamma (Figure 18)
        exact_ok=False,
    ),
    BenchmarkSpec(
        name="HIV",
        description="Multilevel linear model, 84 persons / 369 measurements",
        paper=lambda: hiv_model(n_persons=84, n_measurements=369, n_returned=10),
        bench=_hiv_bench,
        engines=("r2", "church", "infernet"),
        exact_ok=False,
    ),
    BenchmarkSpec(
        name="Chess",
        description="TrueSkill, 77 players / 2926 games, return 3 skills",
        paper=lambda: chess_model(n_players=77, n_games=2926),
        bench=_chess_bench,
        engines=("r2", "church", "infernet"),
        exact_ok=False,
    ),
    BenchmarkSpec(
        name="Halo",
        description="Team TrueSkill, 31 teams of <= 4, return 4 skills",
        paper=lambda: halo_model(n_teams=31, n_games=200),
        bench=_halo_bench,
        engines=("r2", "church", "infernet"),
        exact_ok=False,
    ),
]

_BY_NAME: Dict[str, BenchmarkSpec] = {spec.name: spec for spec in TABLE1}


def benchmark(name: str) -> BenchmarkSpec:
    """Look up a Table-1 benchmark by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {', '.join(_BY_NAME)}"
        ) from None


def benchmark_names() -> List[str]:
    """All Table-1 benchmark names, in table order."""
    return [spec.name for spec in TABLE1]
