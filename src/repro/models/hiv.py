"""The HIV benchmark (Table 1): a multilevel linear model with varying
slope and intercept (after Hoffman & Gelman's running example [15]).

Every person ``p`` has an immunity trajectory ``y = a_p + b_p t`` with
person-level Gaussian priors whose hyperparameters are fixed constants
(DESIGN.md §3: with fixed hyperpriors the per-person blocks are
conditionally independent, which is what gives slicing its leverage —
returning 10 of 84 persons discards the other 74 blocks along with
their measurements).

The Table-1 criterion: return the HIV levels (intercepts) of 10
persons, keep all 369 measurements observed.
"""

from __future__ import annotations

from ..core.ast import Expr, Program
from ..core.builder import ProgramBuilder, v
from .datasets import HIVData, hiv_data

__all__ = ["hiv_model"]


def hiv_model(
    n_persons: int = 84,
    n_measurements: int = 369,
    n_returned: int = 10,
    seed: int = 0,
    data: "HIVData | None" = None,
) -> Program:
    """Build the multilevel model; returns the sum of the first
    ``n_returned`` persons' intercepts (their combined HIV level)."""
    if not 1 <= n_returned <= n_persons:
        raise ValueError("need 1 <= n_returned <= n_persons")
    if data is None:
        data = hiv_data(n_persons, n_measurements, seed)
    b = ProgramBuilder()
    for p in range(n_persons):
        b.sample(f"a{p}", "Gaussian", 4.0, 1.0)
        b.sample(f"b{p}", "Gaussian", -0.5, 0.0625)
    for p, t, y in data.measurements:
        mean = v(f"a{p}") + v(f"b{p}") * t
        b.observe_sample("Gaussian", (mean, 0.25), y)
    ret: Expr = v("a0")
    for p in range(1, n_returned):
        ret = ret + v(f"a{p}")
    return b.build(ret)
