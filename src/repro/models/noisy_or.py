"""The Noisy-OR benchmark (Table 1, after Kiselyov & Shan).

A layered DAG where every non-root node is a noisy-or of its parents:
the node fires if any parent fires *and* that edge is active (each
edge has its own activation probability), or through a leak.

The generated program contains two independent sub-DAGs ("regions").
Leaves of both regions are observed; the query returns a node from
region 0 — so the entire region-1 half is sliceable, which is the
Table-1 slicing criterion "R: subset of nodes in the DAG, O:
unchanged".
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from ..core.ast import Program
from ..core.builder import ProgramBuilder, v

__all__ = ["noisy_or_model"]


def _region(
    b: ProgramBuilder,
    prefix: str,
    n_layers: int,
    width: int,
    rng: random.Random,
    leak: float,
) -> Tuple[List[str], List[str]]:
    """Emit one noisy-or sub-DAG; returns (all node names, leaf names)."""
    layers: List[List[str]] = []
    for layer in range(n_layers):
        names: List[str] = []
        for j in range(width):
            name = f"{prefix}n{layer}_{j}"
            names.append(name)
            if layer == 0:
                b.sample(name, "Bernoulli", round(rng.uniform(0.1, 0.5), 3))
                continue
            # Parents: two random nodes from the previous layer.
            parents = rng.sample(layers[layer - 1], min(2, width))
            terms = []
            for k, parent in enumerate(parents):
                act = f"{name}_a{k}"
                b.sample(act, "Bernoulli", round(rng.uniform(0.5, 0.9), 3))
                terms.append(v(parent) & v(act))
            leak_name = f"{name}_leak"
            b.sample(leak_name, "Bernoulli", leak)
            expr = v(leak_name)
            for t in terms:
                expr = expr | t
            b.assign(name, expr)
        layers.append(names)
    all_nodes = [n for layer in layers for n in layer]
    return all_nodes, layers[-1]


def noisy_or_model(
    n_layers: int = 4,
    width: int = 4,
    seed: int = 0,
    leak: float = 0.05,
    observe_leaves: int = 2,
) -> Program:
    """Build the two-region noisy-or benchmark program.

    ``observe_leaves`` leaves per region are observed ``true``; the
    program returns a root node of region 0.
    """
    rng = random.Random(seed)
    b = ProgramBuilder()
    nodes_a, leaves_a = _region(b, "A", n_layers, width, rng, leak)
    nodes_b, leaves_b = _region(b, "B", n_layers, width, rng, leak)
    for leaf in leaves_a[:observe_leaves] + leaves_b[:observe_leaves]:
        b.observe(v(leaf))
    return b.build(v(nodes_a[0]))
