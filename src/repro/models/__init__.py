"""Benchmark models: the paper's running examples and every Table-1
benchmark, plus synthetic dataset generators."""

from .burglar import burglar_alarm_model
from .datasets import (
    HIVData,
    RegressionData,
    TeamTournament,
    Tournament,
    hiv_data,
    regression_data,
    team_tournament_data,
    tournament_data,
)
from .hiv import hiv_model
from .kcomponents import k_components_model
from .linreg import linreg_model
from .noisy_or import noisy_or_model
from .paper_examples import (
    STUDENT_CORE,
    comparison_program,
    example1,
    example2,
    example3,
    example4,
    example5,
    example6,
    example6_return_b,
)
from .registry import TABLE1, BenchmarkSpec, benchmark, benchmark_names
from .trueskill import chess_model, halo_model

__all__ = [
    "burglar_alarm_model",
    "HIVData",
    "RegressionData",
    "TeamTournament",
    "Tournament",
    "hiv_data",
    "regression_data",
    "team_tournament_data",
    "tournament_data",
    "hiv_model",
    "k_components_model",
    "linreg_model",
    "noisy_or_model",
    "STUDENT_CORE",
    "comparison_program",
    "example1",
    "example2",
    "example3",
    "example4",
    "example5",
    "example6",
    "example6_return_b",
    "TABLE1",
    "BenchmarkSpec",
    "benchmark",
    "benchmark_names",
    "chess_model",
    "halo_model",
]
