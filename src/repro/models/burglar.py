"""The Burglar Alarm benchmark (Table 1, after Pearl).

The classic burglary/earthquake/alarm story, extended with the
"wakes up" event the Table-1 criterion returns, plus an irrelevant
neighbourhood side-story (dog, ice-cream truck, traffic) that the
slicer should remove.

Observations: the alarm rang and the radio reported an earthquake.
Query: does the resident wake up?
"""

from __future__ import annotations

from ..core.ast import Program
from ..core.parser import parse

__all__ = ["burglar_alarm_model"]

_SOURCE = """
bool burglary, earthquake, alarm, radioReport;
bool johnCalls, maryCalls, phoneRings, wakesUp;
bool dogBarks, icecreamTruck, trafficJam, neighborAwake;
bool mailDelivered, gossipSpreads, lightsOn, tvOn, partyNextDoor,
     streetNoisy, catOutside, windowOpen;

burglary ~ Bernoulli(0.01);
earthquake ~ Bernoulli(0.02);

// Alarm: noisy-or of burglary and earthquake.
if (burglary && earthquake)      { alarm ~ Bernoulli(0.95); }
else { if (burglary)             { alarm ~ Bernoulli(0.94); }
else { if (earthquake)           { alarm ~ Bernoulli(0.29); }
else                             { alarm ~ Bernoulli(0.001); } } }

// The radio reports (only) real earthquakes, usually.
if (earthquake) { radioReport ~ Bernoulli(0.992); }
else            { radioReport ~ Bernoulli(0.0001); }

// Neighbours call when the alarm rings.
if (alarm) { johnCalls ~ Bernoulli(0.9); }
else       { johnCalls ~ Bernoulli(0.05); }
if (alarm) { maryCalls ~ Bernoulli(0.7); }
else       { maryCalls ~ Bernoulli(0.01); }

// An unrelated neighbourhood side-story: none of this influences
// wakesUp given the observations, so SLI removes it all.
dogBarks ~ Bernoulli(0.3);
icecreamTruck ~ Bernoulli(0.1);
if (dogBarks && icecreamTruck) { trafficJam ~ Bernoulli(0.5); }
else                           { trafficJam ~ Bernoulli(0.05); }
if (trafficJam) { neighborAwake ~ Bernoulli(0.9); }
else            { neighborAwake ~ Bernoulli(0.2); }
mailDelivered ~ Bernoulli(0.95);
if (neighborAwake && mailDelivered) { gossipSpreads ~ Bernoulli(0.6); }
else                                { gossipSpreads ~ Bernoulli(0.05); }
partyNextDoor ~ Bernoulli(0.08);
if (partyNextDoor) { lightsOn ~ Bernoulli(0.95); }
else               { lightsOn ~ Bernoulli(0.3); }
if (partyNextDoor || trafficJam) { streetNoisy ~ Bernoulli(0.85); }
else                             { streetNoisy ~ Bernoulli(0.1); }
if (lightsOn) { tvOn ~ Bernoulli(0.6); }
else          { tvOn ~ Bernoulli(0.1); }
catOutside ~ Bernoulli(0.4);
if (catOutside && streetNoisy) { windowOpen ~ Bernoulli(0.7); }
else                           { windowOpen ~ Bernoulli(0.2); }

phoneRings = johnCalls || maryCalls;
if (phoneRings) { wakesUp ~ Bernoulli(0.8); }
else            { wakesUp ~ Bernoulli(0.05); }

observe(alarm == true);
observe(radioReport == true);
return wakesUp;
"""


def burglar_alarm_model() -> Program:
    """Build the burglar-alarm benchmark program."""
    return parse(_SOURCE)
