"""The paper's running examples (Figures 1, 2, 4, 5 and Section 2).

Programs are written in concrete syntax and parsed, so they read like
the paper's listings.  ``example3``/``example5`` are the Table-1 rows
"Ex3" and "Ex5".
"""

from __future__ import annotations

from ..core.ast import Program
from ..core.parser import parse

__all__ = [
    "example1",
    "example2",
    "example3",
    "example4",
    "example5",
    "example6",
    "example6_return_b",
    "comparison_program",
    "STUDENT_CORE",
]

_EXAMPLE1 = """
bool c1, c2;
int count;
count = 0;
c1 ~ Bernoulli(0.5);
if (c1) { count = count + 1; }
c2 ~ Bernoulli(0.5);
if (c2) { count = count + 1; }
return count;
"""

_EXAMPLE2 = """
bool c1, c2;
int count;
count = 0;
c1 ~ Bernoulli(0.5);
if (c1) { count = count + 1; }
c2 ~ Bernoulli(0.5);
if (c2) { count = count + 1; }
observe(c1 || c2);
return count;
"""

#: The student/reference-letter fragment shared by Examples 3-5
#: (adapted from Koller & Friedman): d = difficulty, i = intelligence,
#: g = grade, s = SAT, l = letter.
STUDENT_CORE = """
bool d, i, s, l, g;
d ~ Bernoulli(0.6);
i ~ Bernoulli(0.7);
if (!i && !d)      { g ~ Bernoulli(0.3); }
else { if (!i && d)  { g ~ Bernoulli(0.05); }
else { if (i && !d)  { g ~ Bernoulli(0.9); }
else                 { g ~ Bernoulli(0.5); } } }
if (!i) { s ~ Bernoulli(0.2); }
else    { s ~ Bernoulli(0.95); }
"""

_LETTER = """
if (!g) { l ~ Bernoulli(0.1); }
else    { l ~ Bernoulli(0.4); }
"""


def example1() -> Program:
    """Figure 1 (left): two coin flips, return the count."""
    return parse(_EXAMPLE1)


def example2() -> Program:
    """Figure 1 (right): Example 1 conditioned on ``c1 || c2``."""
    return parse(_EXAMPLE2)


def example3() -> Program:
    """Figure 2(a): the student model, return SAT score ``s`` —
    ordinary slicing suffices here."""
    return parse(STUDENT_CORE + _LETTER + "return s;")


def example4() -> Program:
    """Figure 2(b): same model with ``observe(l = true)`` — ordinary
    slicing is *incorrect* here (observe dependence activates the
    ``s <- i <-> g <- l`` trail)."""
    return parse(STUDENT_CORE + _LETTER + "observe(l == true);\nreturn s;")


def example5() -> Program:
    """Figure 4(a): ``observe(g = false)`` then return ``l`` — the OBS
    transformation makes the slice *smaller* than ordinary slicing."""
    return parse(STUDENT_CORE + "observe(g == false);" + _LETTER + "return l;")


_EXAMPLE6 = """
bool x, b, c;
x ~ Bernoulli(0.5);
b = x;
c ~ Bernoulli(0.5);
while (c) {
  b = !b;
  c ~ Bernoulli(0.5);
}
observe(b == false);
return x;
"""


def example6() -> Program:
    """Figure 5: the loopy example; the slice for ``return x`` must
    keep the whole program."""
    return parse(_EXAMPLE6)


def example6_return_b() -> Program:
    """Figure 16(f)'s variant: returning ``b`` instead, the whole loop
    slices away (OBS pins ``b`` to false)."""
    return parse(_EXAMPLE6.replace("return x;", "return b;"))


def comparison_program() -> Program:
    """Section 2's comparison with non-termination-preserving slicing:
    ``while (!x) skip`` is ``observe(x)``; SLI may drop it, an
    NT-preserving slicer may not."""
    return parse(
        """
bool x, y;
x ~ Bernoulli(0.5);
while (!x) { skip; }
y ~ Bernoulli(0.6);
return y;
"""
    )
