"""Synthetic K-independent-components family (factorisation stressor).

``k_components_model(k)`` emits ``k`` statically independent blocks:
each block is a small Bernoulli chain conditioned by one hard observe
whose acceptance probability is ``accept`` (default 0.5), and the
program returns the conjunction of one query variable per block.  No
statement of one block mentions a variable of another, so the
factorisation pass splits the program into exactly ``k`` factors.

The family is the worst case for monolithic rejection sampling and the
best case for shard-by-factor inference: a monolithic rejection run
accepts with probability ``accept**k`` (exponentially small in ``k``),
while the factored run pays ``accept`` per factor independently, so
factored throughput is expected to beat monolithic for every ``k >= 2``
— which is exactly what ``BENCH_pr6.json`` measures.

Not part of :data:`repro.models.registry.TABLE1` (it is not a paper
benchmark); the factored-inference bench harness and the qa campaign
use it directly.
"""

from __future__ import annotations

from typing import Optional

from ..core.ast import Expr, Program
from ..core.builder import ProgramBuilder, v

__all__ = ["k_components_model"]


def k_components_model(
    k: int,
    chain: int = 3,
    accept: float = 0.5,
    seed: Optional[int] = None,
) -> Program:
    """Build the ``k``-independent-components program.

    Each component ``i`` contributes a length-``chain`` chain of
    Bernoulli samples/assignments, one observe accepting with
    probability ``accept``, and one query variable; the return value is
    the AND-fold of the query variables.  ``seed`` is accepted for
    signature uniformity with the other model generators but unused —
    the program is deterministic in its shape parameters.
    """
    del seed
    if k < 1:
        raise ValueError("k must be >= 1")
    if chain < 1:
        raise ValueError("chain must be >= 1")
    if not 0.0 < accept <= 1.0:
        raise ValueError("accept must be in (0, 1]")
    b = ProgramBuilder()
    queries = []
    for i in range(k):
        gate = b.sample(f"bc{i}_gate", "Bernoulli", accept)
        prev = gate
        for j in range(chain):
            node = b.sample(f"bc{i}_n{j}", "Bernoulli", 0.7)
            mixed = b.assign(f"bc{i}_m{j}", prev & node)
            prev = mixed
        b.observe(gate)
        queries.append(prev)
    ret: Expr = queries[0]
    for q in queries[1:]:
        ret = ret & q
    return b.build(ret)
