"""The TrueSkill benchmarks (Table 1): Chess (individual players) and
Halo (teams), after Herbrich et al. [14].

Each player has a latent skill; each game draws noisy performances and
observes that the winner's (team) performance exceeded the loser's.
Tournaments are division/group structured (DESIGN.md §3): the returned
players' division is a proper subset of the tournament, so slicing
removes the other divisions' players *and* games.

Paper scale: Chess = 77 players / 2926 games, Halo = 31 teams with at
most 4 players each.
"""

from __future__ import annotations

from ..core.ast import Expr, Program
from ..core.builder import ProgramBuilder, v
from .datasets import (
    TeamTournament,
    Tournament,
    team_tournament_data,
    tournament_data,
)

__all__ = ["chess_model", "halo_model"]

_SKILL_MEAN = 25.0
_SKILL_VAR = 64.0
_PERF_VAR = 16.0


def chess_model(
    n_players: int = 77,
    n_games: int = 2926,
    n_divisions: int = 7,
    n_returned: int = 3,
    seed: int = 0,
    data: "Tournament | None" = None,
) -> Program:
    """Build the chess skill-rating program.

    Returns the summed skill of ``n_returned`` players from division 0
    (players ``0, n_divisions, 2*n_divisions, ...``), matching the
    Table-1 criterion "skills of 3 particular players".
    """
    if data is None:
        data = tournament_data(n_players, n_games, n_divisions, seed)
    b = ProgramBuilder()
    for p in range(data.n_players):
        b.sample(f"skill{p}", "Gaussian", _SKILL_MEAN, _SKILL_VAR)
    for g, (winner, loser) in enumerate(data.games):
        pw = b.sample(f"perf{g}w", "Gaussian", v(f"skill{winner}"), _PERF_VAR)
        pl = b.sample(f"perf{g}l", "Gaussian", v(f"skill{loser}"), _PERF_VAR)
        b.observe(pw.gt(pl))
    returned = [p for p in range(data.n_players) if data.division_of(p) == 0]
    returned = returned[:n_returned]
    if not returned:
        raise ValueError("no players in division 0")
    ret: Expr = v(f"skill{returned[0]}")
    for p in returned[1:]:
        ret = ret + v(f"skill{p}")
    return b.build(ret)


def halo_model(
    n_teams: int = 31,
    max_players_per_team: int = 4,
    n_games: int = 200,
    n_groups: int = 6,
    n_returned: int = 4,
    seed: int = 0,
    data: "TeamTournament | None" = None,
) -> Program:
    """Build the Halo team skill-rating program.

    A team's performance is the sum of its members' noisy individual
    performances.  Returns the summed skill of ``n_returned`` players
    from the first group-0 team ("skills of 4 particular players").
    """
    if data is None:
        data = team_tournament_data(
            n_teams, max_players_per_team, n_games, n_groups, seed
        )
    b = ProgramBuilder()
    for p in range(data.n_players):
        b.sample(f"skill{p}", "Gaussian", _SKILL_MEAN, _SKILL_VAR)
    for g, (winner, loser) in enumerate(data.games):
        team_perfs = {}
        for side, team in (("w", winner), ("l", loser)):
            member_perfs = []
            for p in data.rosters[team]:
                name = f"perf{g}{side}{p}"
                b.sample(name, "Gaussian", v(f"skill{p}"), _PERF_VAR)
                member_perfs.append(v(name))
            total: Expr = member_perfs[0]
            for mp in member_perfs[1:]:
                total = total + mp
            team_perfs[side] = b.assign(f"teamPerf{g}{side}", total)
        b.observe(team_perfs["w"].gt(team_perfs["l"]))
    group0_teams = [t for t in range(len(data.rosters)) if data.group_of(t) == 0]
    returned = list(data.rosters[group0_teams[0]])[:n_returned]
    ret: Expr = v(f"skill{returned[0]}")
    for p in returned[1:]:
        ret = ret + v(f"skill{p}")
    return b.build(ret)
