"""The Bayesian Linear Regression benchmark (Table 1).

``y = w0 + w1 x + noise`` with Gaussian priors on the weights and a
Gamma prior on the noise precision (matching Infer.NET's classic
formulation [23] — the Gamma is also what makes the emulated Church
engine refuse this benchmark, reproducing the missing Figure-18 bar).

The Table-1 slicing criterion: the program mentions all ``n_points``
data points but *observes only a subset* (100 of 1000 in the paper);
the unobserved points are generated as latent samples, which the
slicer removes entirely.
"""

from __future__ import annotations

from ..core.ast import Program
from ..core.builder import ProgramBuilder, v
from .datasets import RegressionData, regression_data

__all__ = ["linreg_model"]


def linreg_model(
    n_points: int = 1000,
    n_observed: int = 100,
    seed: int = 0,
    data: "RegressionData | None" = None,
) -> Program:
    """Build the regression program: ``n_observed`` observed points,
    ``n_points - n_observed`` latent (sliceable) ones.  Returns the
    slope ``w1``."""
    if not 0 <= n_observed <= n_points:
        raise ValueError("need 0 <= n_observed <= n_points")
    if data is None:
        data = regression_data(n_points, seed)
    b = ProgramBuilder()
    w0 = b.sample("w0", "Gaussian", 0.0, 10.0)
    w1 = b.sample("w1", "Gaussian", 0.0, 10.0)
    prec = b.sample("prec", "Gamma", 2.0, 2.0)
    noise = b.assign("noiseVar", 1.0 / prec)
    for i in range(n_points):
        mean = w0 + w1 * data.xs[i]
        if i < n_observed:
            b.observe_sample("Gaussian", (mean, noise), data.ys[i])
        else:
            # A predicted-but-unmeasured point: latent, sliceable.
            b.sample(f"y{i}", "Gaussian", mean, noise)
    return b.build(v("w1"))
