"""Finite distributions over program output values.

:class:`FiniteDist` is the common currency between the exact engine,
the samplers (via histograms), and the metrics (KL divergence, total
variation).  It stores probabilities keyed by value; values may be
bools, ints, or (binned) floats.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, Mapping, Tuple, Union

__all__ = ["FiniteDist"]

Value = Union[bool, int, float]


class FiniteDist:
    """An immutable finite probability distribution.

    Construction normalizes the given nonnegative weights; a zero total
    raises ``ValueError`` (the paper's semantics is undefined when the
    unnormalized measure is zero, Theorem 1's side condition).
    """

    __slots__ = ("_probs",)

    def __init__(self, weights: Mapping[Value, float]) -> None:
        total = float(sum(weights.values()))
        if not total > 0.0:
            raise ValueError("cannot normalize a zero or negative measure")
        probs: Dict[Value, float] = {}
        for value, w in weights.items():
            if w < 0.0:
                raise ValueError(f"negative weight {w} for value {value!r}")
            if w > 0.0:
                probs[value] = probs.get(value, 0.0) + w / total
        self._probs = probs

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_samples(cls, samples: Iterable[Value]) -> "FiniteDist":
        """Empirical distribution of an iterable of values."""
        counts: Dict[Value, float] = {}
        for s in samples:
            counts[s] = counts.get(s, 0.0) + 1.0
        return cls(counts)

    @classmethod
    def from_weighted_samples(
        cls, pairs: Iterable[Tuple[Value, float]]
    ) -> "FiniteDist":
        """Distribution from (value, weight) pairs (importance sampling)."""
        counts: Dict[Value, float] = {}
        for value, w in pairs:
            counts[value] = counts.get(value, 0.0) + w
        return cls(counts)

    @classmethod
    def point(cls, value: Value) -> "FiniteDist":
        """The degenerate distribution at ``value``."""
        return cls({value: 1.0})

    # -- queries ----------------------------------------------------------------

    def prob(self, value: Value) -> float:
        """Probability of ``value`` (0 outside the support)."""
        return self._probs.get(value, 0.0)

    def support(self) -> Tuple[Value, ...]:
        """Support values in a canonical (sorted) order."""
        return tuple(sorted(self._probs, key=_sort_key))

    def items(self) -> Iterator[Tuple[Value, float]]:
        """(value, probability) pairs in canonical order."""
        for value in self.support():
            yield value, self._probs[value]

    def expectation(self) -> float:
        """Mean, treating booleans as 0/1."""
        return sum(float(v) * p for v, p in self._probs.items())

    def variance(self) -> float:
        """Variance, treating booleans as 0/1."""
        m = self.expectation()
        return sum(p * (float(v) - m) ** 2 for v, p in self._probs.items())

    def mode(self) -> Value:
        """A most-probable value (ties broken by canonical order)."""
        best = max(self._probs.values())
        for value in self.support():
            if self._probs[value] == best:
                return value
        raise AssertionError("unreachable: nonempty distribution has a mode")

    # -- distances ----------------------------------------------------------------

    def kl_from(self, other: "FiniteDist", smoothing: float = 0.0) -> float:
        """``KL(self || other)``.

        With ``smoothing > 0``, ``other`` is mixed with the uniform
        distribution over the union support — the standard trick for
        comparing an empirical estimate against an exact answer in
        convergence plots (Figure 19) without infinities.
        """
        support = set(self._probs) | set(other._probs)
        n = len(support)
        total = 0.0
        for value in support:
            p = self.prob(value)
            if p == 0.0:
                continue
            q = other.prob(value)
            if smoothing > 0.0:
                q = (1.0 - smoothing) * q + smoothing / n
            if q == 0.0:
                return math.inf
            total += p * math.log(p / q)
        return max(total, 0.0)

    def tv_distance(self, other: "FiniteDist") -> float:
        """Total-variation distance."""
        support = set(self._probs) | set(other._probs)
        return 0.5 * sum(abs(self.prob(v) - other.prob(v)) for v in support)

    def allclose(self, other: "FiniteDist", atol: float = 1e-9) -> bool:
        """True when the two distributions agree within ``atol``
        pointwise — the semantics-preservation check used all over the
        transformation tests."""
        support = set(self._probs) | set(other._probs)
        return all(abs(self.prob(v) - other.prob(v)) <= atol for v in support)

    # -- dunder -------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._probs)

    def __iter__(self) -> Iterator[Value]:
        return iter(self.support())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FiniteDist):
            return NotImplemented
        return self._probs == other._probs

    def __hash__(self) -> int:  # pragma: no cover - dict field, rarely hashed
        return hash(tuple(self.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{v!r}: {p:.6g}" for v, p in self.items())
        return f"FiniteDist({{{inner}}})"


def _sort_key(value: Value):
    # Sort bools before numbers of equal float value to keep ordering
    # total; tuples (joint factor values) sort after scalars, by their
    # element keys.
    if isinstance(value, tuple):
        return (2, tuple(_sort_key(v) for v in value))
    return (0 if isinstance(value, bool) else 1, float(value))
