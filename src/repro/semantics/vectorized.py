"""Vectorized (numpy) execution of PROB programs: the second codegen
target on the shared IR.

:func:`compile_vectorized` lowers a program with the same
identity-memoized :func:`repro.ir.lower.lower` the closure backend
uses, runs the vectorizability analysis + bounded loop unrolling of
:mod:`repro.ir.vectorize` (programs outside the fragment raise the
typed :exc:`~repro.ir.vectorize.NotVectorizable`), and emits one
straight-line Python function whose every operation is a numpy
primitive over ``(batch,)`` arrays — one array per program variable,
one boolean *mask* per control-dependence region:

* an ``if`` executes **both** arms, each under its own mask
  (``parent & cond`` / ``parent & ~cond``); writes merge back with
  ``np.where(mask, new, old)``, so a lane only observes the arm its
  condition selected;
* a failed hard ``observe`` does not raise: the lane's mask (and the
  global ``_alive`` mask) drops to ``False``, its log-likelihood is
  pinned at ``-inf``, and every later statement, sample and statement
  counter is masked off — exactly the truncation the scalar backends
  get from raising ``_Blocked`` mid-run;
* sample sites keep the scalar **address scheme** (the same tuples the
  interpreter and closure backend produce, with unrolled iterations at
  ``('W', k)``), and record per-site ``(batch,)`` value / log-prior /
  present columns, so a vectorized lane converts to an ordinary
  :class:`~repro.semantics.executor.RunResult` whose trace replays
  bit-for-bit through the scalar backends — that replay is the
  cross-backend equivalence mechanism (fresh draws use a PCG64
  ``numpy.random.Generator`` and can never bit-match the scalar
  Mersenne stream).

A generator variant (:meth:`VectorizedProgram.particles`) yields a
``(batch,)`` log-weight delta at every conditioning barrier with an
SMC-shaped protocol: ``advance(ancestors)`` optionally permutes all
live state by an ancestor-index array first (vectorized systematic
resampling), then runs to the next barrier.

Deliberate divergences from the scalar backends, all documented in
``docs/architecture.md``: the random stream (PCG64 vs Mersenne),
crash granularity (a division by zero on *any* active lane aborts the
whole batch where scalar engines lose one run), and int64 arithmetic
in place of Python's arbitrary precision.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.ast import (
    Assign,
    Binary,
    Const,
    Decl,
    DistCall,
    Expr,
    Factor,
    Observe,
    ObserveSample,
    Program,
    Sample,
    TupleExpr,
    Unary,
    Var,
)
from ..core.freevars import free_vars
from ..dists.batched import BATCHED, BatchedDist, batched_dist_names
from ..ir.lower import IfRegion, Leaf, Seq, lower
from ..ir.vectorize import (
    DEFAULT_UNROLL_BUDGET,
    NotVectorizable,
    UnrolledLoop,
    unroll_regions,
)
from .compiled import CompilationError, _const_src
from .executor import RunResult
from .trace import Address, Trace, TraceEntry
from .values import EvalError

__all__ = [
    "NotVectorizable",
    "Site",
    "BatchRunResult",
    "VectorizedParticles",
    "VectorizedProgram",
    "compile_vectorized",
    "clear_vectorized_cache",
]

NEG_INF = float("-inf")

_DTYPES = {"bool": np.bool_, "int": np.int64, "float": np.float64}


class Site:
    """A static sample site: its (scalar-compatible) address and the
    distribution recorded at it."""

    __slots__ = ("index", "addr", "dist_name")

    def __init__(self, index: int, addr: Address, dist_name: str) -> None:
        self.index = index
        self.addr = addr
        self.dist_name = dist_name

    def __repr__(self) -> str:
        return f"Site({self.index}, {self.addr!r}, {self.dist_name!r})"


# -- runtime helpers (the generated code's entire vocabulary) ----------------


def _istrue(c):
    """Scalar ``cond is True``, lifted: bool arrays pass through, any
    non-bool value selects the else branch on every lane."""
    if isinstance(c, np.ndarray) and c.ndim:
        if c.dtype.kind == "b":
            return c
        return np.zeros(c.shape, dtype=np.bool_)
    if isinstance(c, (bool, np.bool_)):
        return np.bool_(bool(c))
    return np.bool_(False)


def _bool_operand(x, mask, what):
    """``_as_bool`` lifted: non-bool operands raise EvalError, but only
    when an active lane would actually evaluate them."""
    if isinstance(x, np.ndarray) and x.ndim:
        if x.dtype.kind == "b":
            return x
        if np.any(mask):
            raise EvalError(f"expected a boolean, got {x.ravel()[0]!r}")
        return np.zeros(x.shape, dtype=np.bool_)
    if isinstance(x, (bool, np.bool_)):
        return np.bool_(bool(x))
    if np.any(mask):
        raise EvalError(f"expected a boolean, got {x!r}")
    return np.bool_(False)


def _lnot(x, mask):
    return np.logical_not(_bool_operand(x, mask, "!"))


def _land(left, right, mask):
    return np.logical_and(
        _bool_operand(left, mask, "&&"), _bool_operand(right, mask, "&&")
    )


def _lor(left, right, mask):
    return np.logical_or(
        _bool_operand(left, mask, "||"), _bool_operand(right, mask, "||")
    )


def _num(x):
    """Python's bool-as-0/1 arithmetic, lifted (numpy bool arrays do not
    add/subtract the way Python bools do)."""
    if isinstance(x, np.ndarray):
        if x.dtype.kind == "b":
            return x.astype(np.int64)
        return x
    if isinstance(x, (bool, np.bool_)):
        return int(x)
    return x


def _div(left, right, mask, msg):
    right = _num(right)
    zero = np.asarray(right) == 0
    if np.any(zero & mask if np.ndim(zero) else (zero and mask)):
        raise EvalError(msg)
    if np.any(zero):
        right = np.where(zero, 1, right)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        return np.true_divide(_num(left), right)


def _mod(left, right, mask, msg):
    right = _num(right)
    zero = np.asarray(right) == 0
    if np.any(zero & mask if np.ndim(zero) else (zero and mask)):
        raise EvalError(msg)
    if np.any(zero):
        right = np.where(zero, 1, right)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        return np.mod(_num(left), right)  # numpy % matches Python's floored %


def _bcast(v, n):
    a = np.asarray(v)
    if a.ndim == 0:
        return np.broadcast_to(a, (n,))
    return a


def _f64(v):
    """Scalar ``float(expr)``, lifted."""
    return np.asarray(v, dtype=np.float64)


def _gather(v, anc):
    """Resampling gather; lane-uniform python scalars pass through."""
    if isinstance(v, np.ndarray) and v.ndim:
        return v[anc]
    return v


def _site_sample(handler, args, gen, mask, bval, bpres, n):
    """Sample-site runtime: replay compatible base entries per lane,
    draw fresh for the rest.  Mirrors the closure backend's ``_smp``
    (including re-scoring replayed values under current parameters)."""
    params = handler.prepare(args, mask)
    with np.errstate(all="ignore"):
        if bval is not None:
            base_lp = handler.log_prob(params, bval)
            rep = mask & bpres & (base_lp != NEG_INF)
            if rep.all():
                return bval, np.where(mask, base_lp, 0.0)
        else:
            rep = None
        fresh = handler.sample(params, gen, n)
        fresh_lp = handler.log_prob(params, fresh)
        if rep is None:
            return fresh, np.where(mask, fresh_lp, 0.0)
        values = np.where(rep, bval, fresh)
        lps = np.where(rep, base_lp, fresh_lp)
    return values, np.where(mask, lps, 0.0)


def _site_score(handler, args, value, mask, n):
    """ObserveSample runtime: score a program value under the batched
    distribution (full-width; the caller masks the result)."""
    params = handler.prepare(args, mask)
    v = np.asarray(value)
    if v.ndim == 0:
        v = np.broadcast_to(v, (n,))
    with np.errstate(all="ignore"):
        return handler.log_prob(params, v)


# -- codegen -----------------------------------------------------------------


class _VecCodegen:
    """Emits ``_vec_run`` and ``_vec_particle`` for one unrolled region
    tree.  One fresh mask name per ``if`` arm, statements predicated by
    the innermost mask; ``_alive`` is the innermost mask at nesting
    depth zero."""

    def __init__(self, lowered, root) -> None:
        self.lowered = lowered
        self.root = root
        self.lines: List[str] = []
        self.sites: List[Site] = []
        self.handlers: Dict[str, str] = {}  # dist name -> namespace name
        self._mask_n = 0
        self._tmp_n = 0
        self.defined: set = set()
        self.all_masks: List[str] = []

    # -- small emission helpers ---------------------------------------------

    def emit(self, line: str) -> None:
        self.lines.append("    " + line)

    def fresh_mask(self) -> str:
        name = f"_m{self._mask_n}"
        self._mask_n += 1
        self.all_masks.append(name)
        return name

    def fresh_tmp(self) -> str:
        name = f"_t{self._tmp_n}"
        self._tmp_n += 1
        return name

    def handler(self, dist_name: str) -> str:
        name = self.handlers.get(dist_name)
        if name is None:
            name = f"_h{len(self.handlers)}"
            self.handlers[dist_name] = name
        return name

    # -- expressions ---------------------------------------------------------

    def expr(self, e: Expr, mask: str) -> str:
        if isinstance(e, Var):
            return "_v_" + e.name
        if isinstance(e, Const):
            return _const_src(e.value)
        if isinstance(e, Unary):
            operand = self.expr(e.operand, mask)
            if e.op == "!":
                return f"_lnot({operand}, {mask})"
            return f"(-_num({operand}))"
        if isinstance(e, Binary):
            left, right = self.expr(e.left, mask), self.expr(e.right, mask)
            op = e.op
            if op == "&&":
                return f"_land({left}, {right}, {mask})"
            if op == "||":
                return f"_lor({left}, {right}, {mask})"
            if op in ("==", "!=", "<", "<=", ">", ">=", "+", "-", "*"):
                return f"(_num({left}) {op} _num({right}))"
            if op == "/":
                return f"_div({left}, {right}, {mask}, {f'division by zero in {e}'!r})"
            if op == "%":
                return f"_mod({left}, {right}, {mask}, {f'modulo by zero in {e}'!r})"
            raise CompilationError(f"unknown operator {op!r}")
        raise CompilationError(f"not a vectorizable expression: {e!r}")

    def dist_args(self, d: DistCall, mask: str) -> str:
        if not d.args:
            return "()"
        parts = [self.expr(arg, mask) for arg in d.args]
        if len(parts) == 1:
            return f"({parts[0]},)"
        return "(" + ", ".join(parts) + ")"

    # -- assignment with branch predication ----------------------------------

    def assign(self, name: str, value_src: str, mask: str) -> None:
        var = "_v_" + name
        if name not in self.defined:
            # First definition: lanes outside the mask receive the same
            # value, which def-before-use-valid programs never observe
            # (the closure backend makes the same call for undeclared
            # reads).
            self.defined.add(name)
            self.emit(f"{var} = {value_src}")
        elif mask == "_alive":
            # Depth zero: dead lanes' values are unobservable (their
            # ll, trace presence and counters are already pinned), so
            # skip the merge.
            self.emit(f"{var} = {value_src}")
        else:
            self.emit(f"{var} = np.where({mask}, {value_src}, {var})")

    # -- statements -----------------------------------------------------------

    def region(self, region, parts: List[object], mask: str, particle: bool) -> bool:
        """Emit a region under ``mask``; returns whether it can block."""
        if isinstance(region, Leaf):
            if region.node is None:  # source `skip`
                return False
            return self.stmt(region.stmt, parts, mask, particle)
        if isinstance(region, Seq):
            blocked = False
            for i, child in enumerate(region.children):
                blocked |= self.region(child, parts + [i], mask, particle)
            return blocked
        if isinstance(region, IfRegion):
            self.emit(f"_n = _n + {mask}")
            cond = self.fresh_tmp()
            self.emit(f"{cond} = _istrue({self.expr(region.cond, mask)})")
            then_mask = self.fresh_mask()
            else_mask = self.fresh_mask()
            self.emit(f"{then_mask} = {mask} & {cond}")
            self.emit(f"{else_mask} = {mask} & ~{cond}")
            blocked = self.region(region.then_region, parts + ["T"], then_mask, particle)
            blocked |= self.region(region.else_region, parts + ["E"], else_mask, particle)
            if blocked and mask != "_alive":
                # A nested block shrank _alive; the enclosing mask must
                # drop those lanes too before the next statement.
                self.emit(f"{mask} = {mask} & _alive")
            return blocked
        if isinstance(region, UnrolledLoop):
            self.emit(f"_n = _n + {mask}  # while entry")
            blocked = False
            for k, body in enumerate(region.iterations):
                blocked |= self.region(body, parts + ["W", k], mask, particle)
                self.emit(f"_n = _n + {mask}  # iteration {k}")
            return blocked
        raise CompilationError(f"not a vectorizable region: {region!r}")

    def _shrink(self, fail_src: str, mask: str) -> None:
        """Kill the lanes where ``fail_src`` holds."""
        fail = self.fresh_tmp()
        self.emit(f"{fail} = {fail_src}")
        self.emit(f"_alive = _alive & ~{fail}")
        if mask != "_alive":
            self.emit(f"{mask} = {mask} & _alive")

    def _barrier(self, delta_src: str, particle: bool) -> None:
        """Particle mode: yield the log-weight delta and honour an
        ancestor permutation sent back by the engine."""
        assert particle
        anc = self.fresh_tmp()
        self.emit(f"{anc} = yield {delta_src}")
        self.emit(f"if {anc} is not None:")
        names = ["_alive", "_n"]
        names += self.all_masks
        names += sorted("_v_" + v for v in self.defined)
        for name in names:
            self.emit(f"    {name} = _gather({name}, {anc})")
        if self.sites:
            self.emit(f"    for _si in range({len(self.sites)}):")
            self.emit(f"        _tv[_si] = _gather(_tv[_si], {anc})")
            self.emit(f"        _tl[_si] = _gather(_tl[_si], {anc})")
            self.emit(f"        _tp[_si] = _gather(_tp[_si], {anc})")

    def stmt(self, stmt, parts: List[object], mask: str, particle: bool) -> bool:
        self.emit(f"_n = _n + {mask}")
        if isinstance(stmt, Decl):
            dtype = _DTYPES.get(stmt.type)
            if dtype is None:
                raise CompilationError(f"unknown type {stmt.type!r}")
            self.assign(stmt.name, f"np.zeros(_B, dtype=np.{dtype.__name__})", mask)
            return False
        if isinstance(stmt, Assign):
            self.assign(stmt.name, self.expr(stmt.expr, mask), mask)
            return False
        if isinstance(stmt, Sample):
            index = len(self.sites)
            self.sites.append(Site(index, tuple(parts), stmt.dist.name))
            handler = self.handler(stmt.dist.name)
            args = self.dist_args(stmt.dist, mask)
            val, lp = self.fresh_tmp(), self.fresh_tmp()
            base = f"_bv[{index}], _bp[{index}]" if not particle else "None, None"
            self.emit(
                f"{val}, {lp} = _site_sample({handler}, {args}, _gen, "
                f"{mask}, {base}, _B)"
            )
            self.emit(f"_tv[{index}] = {val}")
            self.emit(f"_tl[{index}] = {lp}")
            self.emit(f"_tp[{index}] = {mask}")
            self.assign(stmt.name, val, mask)
            return False
        if isinstance(stmt, Observe):
            cond = self.fresh_tmp()
            self.emit(f"{cond} = _istrue({self.expr(stmt.cond, mask)})")
            if particle:
                delta = self.fresh_tmp()
                self.emit(
                    f"{delta} = np.where({mask} & ~{cond}, NEG_INF, _zeros)"
                )
                self._shrink(f"{mask} & ~{cond}", mask)
                self._barrier(delta, particle)
            else:
                self.emit(f"_ll = np.where({mask} & ~{cond}, NEG_INF, _ll)")
                self._shrink(f"{mask} & ~{cond}", mask)
            return True
        if isinstance(stmt, ObserveSample):
            handler = self.handler(stmt.dist.name)
            args = self.dist_args(stmt.dist, mask)
            value = self.expr(stmt.value, mask)
            lp = self.fresh_tmp()
            self.emit(
                f"{lp} = _site_score({handler}, {args}, {value}, {mask}, _B)"
            )
            if particle:
                delta = self.fresh_tmp()
                self.emit(f"{delta} = np.where({mask}, {lp}, 0.0)")
                self._shrink(f"{mask} & ({lp} == NEG_INF)", mask)
                self._barrier(delta, particle)
            else:
                self.emit(f"_ll = _ll + np.where({mask}, {lp}, 0.0)")
                self._shrink(f"{mask} & ({lp} == NEG_INF)", mask)
            return True
        if isinstance(stmt, Factor):
            weight = f"_f64({self.expr(stmt.log_weight, mask)})"
            w = self.fresh_tmp()
            self.emit(f"{w} = np.where({mask}, {weight}, 0.0)")
            if particle:
                # The engine's (reset-at-resample) log-weights are the
                # authority on cumulative death; a -inf *delta* is the
                # only per-lane death the generator must mirror.
                self._shrink(f"{mask} & ({w} == NEG_INF)", mask)
                self._barrier(w, particle)
            else:
                self.emit(f"_ll = _ll + {w}")
                self._shrink(f"{mask} & (_ll == NEG_INF)", mask)
            return True
        raise CompilationError(f"not a primitive statement: {stmt!r}")

    # -- entry points ---------------------------------------------------------

    def ret_src(self) -> str:
        ret = self.lowered.ret
        assert ret is not None
        if isinstance(ret, TupleExpr):
            inner = ", ".join(
                f"_bcast({self.expr(el, '_alive')}, _B)" for el in ret.elements
            )
            if len(ret.elements) == 1:
                inner += ","
            return f"({inner})"
        return f"_bcast({self.expr(ret, '_alive')}, _B)"

    def function(self, particle: bool) -> None:
        n_sites = len(self.sites)
        self.sites = []
        self.handlers = dict(self.handlers)
        self._mask_n = 0
        self._tmp_n = 0
        self.defined = set()
        self.all_masks = []
        if particle:
            self.lines.append("def _vec_particle(_ctx, _gen, _B):")
            # A program without conditioning barriers emits no `yield`;
            # this unreachable one keeps the function a generator.
            self.emit("if False:")
            self.emit("    yield None")
        else:
            self.lines.append("def _vec_run(_gen, _B, _bv, _bp):")
            self.emit("_ll = np.zeros(_B, dtype=np.float64)")
        self.emit("_alive = np.ones(_B, dtype=np.bool_)")
        self.emit("_zeros = np.zeros(_B, dtype=np.float64)")
        self.emit("_n = np.zeros(_B, dtype=np.int64)")
        self.emit("_tv = [None] * _NSITES")
        self.emit("_tl = [None] * _NSITES")
        self.emit("_tp = [None] * _NSITES")
        self.region(self.root, [], "_alive", particle)
        if particle:
            self.emit("_ctx.value = " + self.ret_src())
            self.emit("_ctx.statements = _n")
            self.emit("_ctx.site_values = _tv")
            self.emit("_ctx.site_log_priors = _tl")
            self.emit("_ctx.site_present = _tp")
        else:
            self.emit(f"return {self.ret_src()}, _ll, _n, _tv, _tl, _tp")
        self.lines.append("")
        if n_sites and n_sites != len(self.sites):  # pragma: no cover
            raise CompilationError("site count diverged between entry points")


# -- results -----------------------------------------------------------------


class BatchRunResult:
    """The result of one vectorized batch: per-lane observables plus
    per-site trace columns.  ``lane_result(i)`` converts lane ``i`` to
    the scalar :class:`RunResult` the rest of the system speaks."""

    __slots__ = (
        "value",
        "log_likelihood",
        "statements",
        "site_values",
        "site_log_priors",
        "site_present",
        "sites",
        "batch",
    )

    def __init__(
        self,
        value,
        log_likelihood: np.ndarray,
        statements: np.ndarray,
        site_values: List[Optional[np.ndarray]],
        site_log_priors: List[Optional[np.ndarray]],
        site_present: List[Optional[np.ndarray]],
        sites: Tuple[Site, ...],
        batch: int,
    ) -> None:
        self.value = value
        self.log_likelihood = log_likelihood
        self.statements = statements
        self.site_values = site_values
        self.site_log_priors = site_log_priors
        self.site_present = site_present
        self.sites = sites
        self.batch = batch

    @property
    def blocked(self) -> np.ndarray:
        return self.log_likelihood == NEG_INF

    def log_priors(self) -> np.ndarray:
        """Per-lane total log-prior over present trace entries."""
        total = np.zeros(self.batch, dtype=np.float64)
        for lp, present in zip(self.site_log_priors, self.site_present):
            if lp is not None:
                total = total + np.where(present, lp, 0.0)
        return total

    def log_joints(self) -> np.ndarray:
        return self.log_likelihood + self.log_priors()

    def lane_value(self, i: int):
        if self.log_likelihood[i] == NEG_INF:
            return None
        if isinstance(self.value, tuple):
            return tuple(v[i].item() for v in self.value)
        return self.value[i].item()

    def lane_trace(self, i: int) -> Trace:
        trace: Trace = {}
        for site, values, lps, present in zip(
            self.sites, self.site_values, self.site_log_priors, self.site_present
        ):
            if values is not None and bool(present[i]):
                trace[site.addr] = TraceEntry(
                    values[i].item(), float(lps[i]), site.dist_name
                )
        return trace

    def lane_result(self, i: int) -> RunResult:
        return RunResult(
            self.lane_value(i),
            float(self.log_likelihood[i]),
            self.lane_trace(i),
            int(self.statements[i]),
            0,
        )


class VectorizedParticles:
    """Batched SMC particle advancement: ``advance(ancestors)`` permutes
    state by the ancestor-index array (``None`` for no resampling),
    runs every lane to its next conditioning barrier, and returns the
    ``(batch,)`` log-weight delta — ``None`` once the program ends."""

    def __init__(self, vectorized: "VectorizedProgram", gen, batch: int) -> None:
        self.batch = batch
        self.sites = vectorized.sites
        self.value = None
        self.statements: Optional[np.ndarray] = None
        self.site_values: Optional[List] = None
        self.site_log_priors: Optional[List] = None
        self.site_present: Optional[List] = None
        self._it = vectorized._particle(self, gen, batch)
        self._started = False

    def advance(self, ancestors: Optional[np.ndarray] = None) -> Optional[np.ndarray]:
        try:
            if not self._started:
                self._started = True
                assert ancestors is None
                return next(self._it)
            return self._it.send(ancestors)
        except StopIteration:
            return None

    def finished_result(self) -> BatchRunResult:
        """The batch result once :meth:`advance` returned ``None`` —
        log-likelihood is all-zero here (weights live in the engine)."""
        assert self.statements is not None
        return BatchRunResult(
            self.value,
            np.zeros(self.batch, dtype=np.float64),
            self.statements,
            self.site_values,
            self.site_log_priors,
            self.site_present,
            self.sites,
            self.batch,
        )


# -- the compiled object -----------------------------------------------------


class VectorizedProgram:
    """A program translated to straight-line numpy batch code (plus the
    barrier-generator variant for SMC)."""

    def __init__(self, program: Program, unroll_budget: int = DEFAULT_UNROLL_BUDGET):
        if not isinstance(program, Program):
            raise CompilationError("compile_vectorized requires a Program")
        for name in free_vars(program):
            if not ("_v_" + name).isidentifier():
                raise CompilationError(f"variable name {name!r} cannot be compiled")
        self.program = program
        self.unroll_budget = unroll_budget
        lowered = lower(program)
        root = unroll_regions(lowered, unroll_budget, batched_dist_names())
        gen = _VecCodegen(lowered, root)
        gen.function(particle=False)
        gen.function(particle=True)
        self.source = "\n".join(gen.lines)
        self.sites: Tuple[Site, ...] = tuple(gen.sites)
        self._handler_names = dict(gen.handlers)
        self._exec()

    def _exec(self) -> None:
        namespace: Dict[str, object] = {
            "np": np,
            "NEG_INF": NEG_INF,
            "_NSITES": len(self.sites),
            "_istrue": _istrue,
            "_lnot": _lnot,
            "_land": _land,
            "_lor": _lor,
            "_num": _num,
            "_div": _div,
            "_mod": _mod,
            "_bcast": _bcast,
            "_f64": _f64,
            "_gather": _gather,
            "_site_sample": _site_sample,
            "_site_score": _site_score,
        }
        for dist_name, ns_name in self._handler_names.items():
            namespace[ns_name] = BATCHED[dist_name]
        exec(compile(self.source, "<repro.vectorized>", "exec"), namespace)
        self._run = namespace["_vec_run"]
        self._particle = namespace["_vec_particle"]

    # Like CompiledProgram: the source and the program pickle, the
    # exec-produced functions re-bind on unpickle.

    def __getstate__(self) -> Dict[str, object]:
        return {
            "program": self.program,
            "unroll_budget": self.unroll_budget,
            "source": self.source,
            "sites": self.sites,
            "_handler_names": self._handler_names,
        }

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.program = state["program"]  # type: ignore[assignment]
        self.unroll_budget = state["unroll_budget"]  # type: ignore[assignment]
        self.source = state["source"]  # type: ignore[assignment]
        self.sites = state["sites"]  # type: ignore[assignment]
        self._handler_names = state["_handler_names"]  # type: ignore[assignment]
        self._exec()

    def base_from_trace(
        self, trace: Optional[Trace], batch: int
    ) -> Tuple[List[Optional[np.ndarray]], List[Optional[np.ndarray]]]:
        """Per-site base columns replicating ``trace`` across ``batch``
        lanes (the vectorized analogue of passing ``base_trace``)."""
        values: List[Optional[np.ndarray]] = [None] * len(self.sites)
        present: List[Optional[np.ndarray]] = [None] * len(self.sites)
        if trace:
            for site in self.sites:
                entry = trace.get(site.addr)
                if entry is not None and entry.dist_name == site.dist_name:
                    dtype = BATCHED[site.dist_name].dtype
                    values[site.index] = np.full(batch, entry.value, dtype=dtype)
                    present[site.index] = np.ones(batch, dtype=np.bool_)
        return values, present

    def run_batch(
        self,
        gen: np.random.Generator,
        batch: int,
        base: Optional[
            Tuple[Sequence[Optional[np.ndarray]], Sequence[Optional[np.ndarray]]]
        ] = None,
    ) -> BatchRunResult:
        """Execute ``batch`` lanes; ``base`` optionally supplies
        per-site (values, present) columns to replay."""
        if base is None:
            bv: Sequence[Optional[np.ndarray]] = [None] * len(self.sites)
            bp: Sequence[Optional[np.ndarray]] = [None] * len(self.sites)
        else:
            bv, bp = base
        try:
            value, ll, statements, tv, tl, tp = self._run(gen, batch, bv, bp)
        except NameError as exc:  # read of a never-assigned variable
            name = getattr(exc, "name", "") or ""
            raise EvalError(
                f"variable {name.removeprefix('_v_')!r} is not defined"
            ) from None
        return BatchRunResult(
            value, ll, statements, tv, tl, tp, self.sites, batch
        )

    def particles(self, gen: np.random.Generator, batch: int) -> VectorizedParticles:
        return VectorizedParticles(self, gen, batch)


# -- memoization -------------------------------------------------------------

#: ``id(program) -> (program, outcome)`` where outcome is either the
#: VectorizedProgram or the NotVectorizable verdict (analysis is as
#: cacheable as codegen).
_VEC_CACHE: Dict[Tuple[int, int], Tuple[Program, object]] = {}
_VEC_FPRINT_CACHE: Dict[Tuple[str, int], object] = {}
_VEC_CACHE_MAX = 512


def clear_vectorized_cache() -> None:
    """Drop all memoized vectorized compilations (mainly for tests)."""
    _VEC_CACHE.clear()
    _VEC_FPRINT_CACHE.clear()


def compile_vectorized(
    program: Program, unroll_budget: int = DEFAULT_UNROLL_BUDGET
) -> VectorizedProgram:
    """Compile ``program`` for the array backend, memoized like
    :func:`repro.semantics.compiled.compile_program` (identity layer
    over a content-fingerprint layer).  ``NotVectorizable`` verdicts
    are memoized too and re-raised."""
    key = (id(program), unroll_budget)
    hit = _VEC_CACHE.get(key)
    if hit is not None and hit[0] is program:
        if isinstance(hit[1], NotVectorizable):
            raise hit[1]
        return hit[1]  # type: ignore[return-value]
    from ..core.fingerprint import program_fingerprint

    fp = (program_fingerprint(program, kind="vectorized"), unroll_budget)
    outcome = _VEC_FPRINT_CACHE.get(fp)
    if outcome is None:
        from ..obs.recorder import current_recorder

        with current_recorder().span("semantics.vectorize") as sp:
            try:
                outcome = VectorizedProgram(program, unroll_budget)
                sp.set(code_chars=len(outcome.source), sites=len(outcome.sites))
            except NotVectorizable as exc:
                outcome = exc
                sp.set(not_vectorizable=exc.reason)
        if len(_VEC_FPRINT_CACHE) >= _VEC_CACHE_MAX:
            _VEC_FPRINT_CACHE.clear()
        _VEC_FPRINT_CACHE[fp] = outcome
    if len(_VEC_CACHE) >= _VEC_CACHE_MAX:
        _VEC_CACHE.clear()
    _VEC_CACHE[key] = (program, outcome)
    if isinstance(outcome, NotVectorizable):
        raise outcome
    return outcome  # type: ignore[return-value]
