"""Expression evaluation and program states.

A state is a plain ``dict`` mapping variable names to values (bool /
int / float).  Uninitialized variables have the default value of their
declared type (the paper lifts partial valuations to total ones with
defaults); reads of completely unknown variables raise
:class:`EvalError` — the validator flags such programs up front.
"""

from __future__ import annotations

from typing import Dict, Tuple, Union

from ..core.ast import Binary, Const, DistCall, Expr, TupleExpr, Unary, Var

__all__ = ["Value", "State", "EvalError", "eval_expr", "eval_dist_args", "default_value"]

Value = Union[bool, int, float]
State = Dict[str, Value]

#: Default values per declared type (paper: "assuming default values
#: for uninitialized variables").
_DEFAULTS: Dict[str, Value] = {"bool": False, "int": 0, "float": 0.0}


class EvalError(RuntimeError):
    """Runtime evaluation failure (unknown variable, division by zero,
    type confusion)."""


def default_value(type_name: str) -> Value:
    """The default value assigned by a declaration of ``type_name``."""
    try:
        return _DEFAULTS[type_name]
    except KeyError:
        raise EvalError(f"unknown type {type_name!r}") from None


def eval_expr(expr: Expr, state: State) -> Value:
    """Evaluate ``expr`` in ``state``.

    Boolean connectives short-circuit; ``/`` is true division; ``%``
    follows Python semantics.  Comparison and arithmetic on mixed
    int/float follow Python's numeric tower.
    """
    if isinstance(expr, Var):
        try:
            return state[expr.name]
        except KeyError:
            raise EvalError(f"variable {expr.name!r} is not defined") from None
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Unary):
        if expr.op == "!":
            return not _as_bool(eval_expr(expr.operand, state))
        # expr.op == "-"
        return -_as_number(eval_expr(expr.operand, state))
    if isinstance(expr, Binary):
        op = expr.op
        if op == "&&":
            return (
                _as_bool(eval_expr(expr.left, state))
                and _as_bool(eval_expr(expr.right, state))
            )
        if op == "||":
            return (
                _as_bool(eval_expr(expr.left, state))
                or _as_bool(eval_expr(expr.right, state))
            )
        left = eval_expr(expr.left, state)
        right = eval_expr(expr.right, state)
        if op == "==":
            return left == right
        if op == "!=":
            return left != right
        lnum, rnum = _as_number(left), _as_number(right)
        if op == "<":
            return lnum < rnum
        if op == "<=":
            return lnum <= rnum
        if op == ">":
            return lnum > rnum
        if op == ">=":
            return lnum >= rnum
        if op == "+":
            return lnum + rnum
        if op == "-":
            return lnum - rnum
        if op == "*":
            return lnum * rnum
        if op == "/":
            if rnum == 0:
                raise EvalError(f"division by zero in {expr}")
            return lnum / rnum
        if op == "%":
            if rnum == 0:
                raise EvalError(f"modulo by zero in {expr}")
            return lnum % rnum
        raise EvalError(f"unknown operator {op!r}")
    if isinstance(expr, TupleExpr):
        return tuple(eval_expr(e, state) for e in expr.elements)
    raise EvalError(f"not an expression: {expr!r}")


def eval_dist_args(dist: DistCall, state: State) -> Tuple[Value, ...]:
    """Evaluate a distribution call's parameter expressions."""
    return tuple(eval_expr(arg, state) for arg in dist.args)


def _as_bool(value: Value) -> bool:
    if isinstance(value, bool):
        return value
    raise EvalError(f"expected a boolean, got {value!r}")


def _as_number(value: Value) -> Union[int, float]:
    if isinstance(value, bool):
        # Booleans participate in arithmetic as 0/1, matching C.
        return int(value)
    if isinstance(value, (int, float)):
        return value
    raise EvalError(f"expected a number, got {value!r}")
