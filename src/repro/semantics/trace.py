"""Execution traces: the random choices of one program run.

A *trace* maps sample-site addresses to the values drawn there.
Addresses are structural paths through the AST (block index, branch
tag, loop iteration), so the "same" probabilistic assignment in the
same loop iteration gets the same address across runs — the naming
scheme of lightweight Metropolis-Hastings (Wingate et al., 2011),
which both the R2-like and Church-like engines build on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple, Union

__all__ = ["Address", "TraceEntry", "Trace", "total_log_prior"]

Address = Tuple[Union[int, str], ...]

Value = Union[bool, int, float]


@dataclass(frozen=True)
class TraceEntry:
    """One recorded random choice.

    ``log_prior`` is the log density/mass of ``value`` under the
    distribution *as parameterized in the run that produced this
    trace* (parameters may depend on earlier choices).
    ``dist_name`` lets replays detect that a site's distribution
    changed kind entirely, in which case reuse is meaningless.
    """

    value: Value
    log_prior: float
    dist_name: str


Trace = Dict[Address, TraceEntry]


def total_log_prior(trace: Trace) -> float:
    """Sum of log priors over all sites of a trace."""
    return sum(entry.log_prior for entry in trace.values())
