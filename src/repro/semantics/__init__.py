"""Semantics of PROB: exact enumeration (the oracle) and the forward
executor with traces (the substrate of the sampling engines)."""

from .distribution import FiniteDist
from .exact import ExactEngineError, ExactOptions, ExactResult, exact_inference
from .factored import factored_exact
from .executor import (
    ExecutorOptions,
    NonTerminatingRun,
    RunResult,
    run_program,
)
from .trace import Address, Trace, TraceEntry, total_log_prior
from .values import EvalError, State, Value, default_value, eval_expr

__all__ = [
    "FiniteDist",
    "ExactEngineError",
    "ExactOptions",
    "ExactResult",
    "exact_inference",
    "factored_exact",
    "ExecutorOptions",
    "NonTerminatingRun",
    "RunResult",
    "run_program",
    "Address",
    "Trace",
    "TraceEntry",
    "total_log_prior",
    "EvalError",
    "State",
    "Value",
    "default_value",
    "eval_expr",
]
