"""Backward liveness analysis for PROB statements.

``live_in(S, out)`` computes the variables whose values *may* be read
by ``S`` or by the continuation whose live set is ``out``.  It is
deliberately conservative: right-hand sides count as read even when
the target is dead (the exact engine still evaluates them, so their
variables must stay in the state).

The exact enumeration engine uses this to project program states onto
their live variables after every statement — dead variables would
otherwise keep exponentially many distinguishable states alive (the
preprocessed Burglar Alarm model has 28 booleans but at most a handful
live at once).
"""

from __future__ import annotations

from typing import FrozenSet

from ..core.ast import (
    Assign,
    Block,
    Decl,
    Factor,
    If,
    Observe,
    ObserveSample,
    Sample,
    Skip,
    Stmt,
    While,
)
from ..core.freevars import free_vars

__all__ = ["live_in"]


def live_in(stmt: Stmt, out: FrozenSet[str]) -> FrozenSet[str]:
    """Variables live immediately before ``stmt`` given the live-out
    set ``out``."""
    if isinstance(stmt, Skip):
        return out
    if isinstance(stmt, Decl):
        return out - {stmt.name}
    if isinstance(stmt, Assign):
        return (out - {stmt.name}) | free_vars(stmt.expr)
    if isinstance(stmt, Sample):
        return (out - {stmt.name}) | free_vars(stmt.dist)
    if isinstance(stmt, Observe):
        return out | free_vars(stmt.cond)
    if isinstance(stmt, ObserveSample):
        return out | free_vars(stmt.dist) | free_vars(stmt.value)
    if isinstance(stmt, Factor):
        return out | free_vars(stmt.log_weight)
    if isinstance(stmt, Block):
        live = out
        for s in reversed(stmt.stmts):
            live = live_in(s, live)
        return live
    if isinstance(stmt, If):
        return (
            free_vars(stmt.cond)
            | live_in(stmt.then_branch, out)
            | live_in(stmt.else_branch, out)
        )
    if isinstance(stmt, While):
        # Fixpoint: the loop may repeat, so anything live at its head
        # stays live across iterations.
        live = out | free_vars(stmt.cond)
        while True:
            next_live = live | live_in(stmt.body, live)
            if next_live == live:
                return live
            live = next_live
    raise TypeError(f"not a statement: {stmt!r}")
