"""Backward liveness analysis, as an instance of the generic CFG
dataflow engine (:mod:`repro.ir.analyses`).

``live_in(S, out)`` computes the variables whose values *may* be read
by ``S`` or by the continuation whose live set is ``out``.  It is
deliberately conservative: right-hand sides count as read even when
the target is dead (the exact engine still evaluates them, so their
variables must stay in the state).

The statement is lowered to its CFG (shared with every other analysis
via the identity-memoized :func:`repro.ir.lower.lower`) and a standard
union/gen-kill backward problem is solved by the worklist engine —
``while`` loops fall out of the fixpoint instead of needing their own
hand-rolled iteration.  Results are memoized per ``(statement, out)``
pair: the exact enumeration engine re-queries the same loop body once
per peeled iteration, and those queries now cost a dictionary hit.

The exact engine uses this to project program states onto their live
variables after every statement — dead variables would otherwise keep
exponentially many distinguishable states alive (the preprocessed
Burglar Alarm model has 28 booleans but at most a handful live at
once).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

from ..core.ast import (
    Assign,
    Decl,
    Factor,
    Observe,
    ObserveSample,
    Sample,
    Stmt,
)
from ..core.freevars import free_vars
from ..ir.analyses import DataflowProblem, solve
from ..ir.cfg import Node
from ..ir.lower import lower

__all__ = ["live_in", "LivenessProblem", "clear_liveness_cache"]


class LivenessProblem(DataflowProblem[FrozenSet[str]]):
    """May-liveness: backward, join = union, gen/kill per node kind.

    Branch and loop-header nodes generate their condition's variables;
    definitions kill their target after generating their reads.
    """

    direction = "backward"

    def __init__(self, live_out: FrozenSet[str]) -> None:
        self._boundary = live_out

    def boundary(self) -> FrozenSet[str]:
        return self._boundary

    def initial(self) -> FrozenSet[str]:
        return frozenset()

    def join(self, a: FrozenSet[str], b: FrozenSet[str]) -> FrozenSet[str]:
        return a | b

    def transfer(self, node: Node, value: FrozenSet[str]) -> FrozenSet[str]:
        if node.kind in ("branch", "loop"):
            return value | free_vars(node.cond)
        stmt = node.stmt
        if isinstance(stmt, Decl):
            return value - {stmt.name}
        if isinstance(stmt, Assign):
            return (value - {stmt.name}) | free_vars(stmt.expr)
        if isinstance(stmt, Sample):
            return (value - {stmt.name}) | free_vars(stmt.dist)
        if isinstance(stmt, Observe):
            return value | free_vars(stmt.cond)
        if isinstance(stmt, ObserveSample):
            return value | free_vars(stmt.dist) | free_vars(stmt.value)
        if isinstance(stmt, Factor):
            return value | free_vars(stmt.log_weight)
        raise TypeError(f"not a primitive statement: {stmt!r}")


#: ``(id(stmt), live_out) -> live_in`` memo.  The statement reference is
#: stored so the id key stays valid while the entry lives.
_CACHE: Dict[Tuple[int, FrozenSet[str]], Tuple[Stmt, FrozenSet[str]]] = {}
_CACHE_MAX = 65536


def clear_liveness_cache() -> None:
    """Drop memoized liveness results (mainly for tests)."""
    _CACHE.clear()


def live_in(stmt: Stmt, out: FrozenSet[str]) -> FrozenSet[str]:
    """Variables live immediately before ``stmt`` given the live-out
    set ``out``."""
    out = frozenset(out)
    key = (id(stmt), out)
    hit = _CACHE.get(key)
    if hit is not None and hit[0] is stmt:
        return hit[1]
    lowered = lower(stmt)
    solution = solve(lowered.cfg, LivenessProblem(out))
    result = solution.entry_value()
    if len(_CACHE) >= _CACHE_MAX:
        _CACHE.clear()
    _CACHE[key] = (stmt, result)
    return result
