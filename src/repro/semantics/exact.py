"""Exact denotational semantics by weighted-state enumeration.

This engine computes the Figure-8 semantics for programs whose sampled
distributions are discrete: the unnormalized measure ``[[S]](f)(⊥)``,
the normalizing constant ``[[S]](λσ.1)(⊥)``, and the normalized output
distribution ``[[S return E]]``.

Loops follow the paper's ``sup_n [[while E do^n S]]`` semantics: we
propagate a set of weighted *running* states, peel one iteration at a
time, and accumulate exited states.  The supremum is approached from
below; iteration stops when the still-running mass drops under
``loop_mass_tol`` (the dropped mass is exactly the measure of runs the
finite unrollings have not yet terminated), or when the running set
reaches a fixpoint (provably non-terminating mass, e.g.
``while (!x) skip``).

States are projected onto their **live** variables after every
statement (:mod:`repro.semantics.liveness`): states that differ only
in dead variables merge, which keeps the enumeration polynomial on
long mostly-independent programs (the Table-1 benchmarks) instead of
exponential in the number of variables ever assigned.

The engine is the *oracle* for every transformation test: a transform
is semantics-preserving iff original and transformed programs yield
``allclose`` output distributions here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Tuple

from ..core.ast import (
    Assign,
    Block,
    Decl,
    Factor,
    If,
    Observe,
    ObserveSample,
    Program,
    Sample,
    Skip,
    Stmt,
    While,
)
from ..core.freevars import free_vars
from ..dists import make_distribution
from .distribution import FiniteDist
from .liveness import live_in
from .values import State, Value, default_value, eval_dist_args, eval_expr

__all__ = ["ExactOptions", "ExactResult", "exact_inference", "ExactEngineError"]

# A state is keyed by its sorted items so that states reached along
# different control paths with equal valuations merge their mass.
_StateKey = Tuple[Tuple[str, Value], ...]
_Weighted = Dict[_StateKey, float]


class ExactEngineError(RuntimeError):
    """The program is outside the exact engine's reach (continuous
    sample, state blow-up, non-converging loop)."""


@dataclass(frozen=True)
class ExactOptions:
    """Tuning knobs for the exact engine.

    ``support_tol``: tail mass dropped when enumerating infinite
    discrete supports (Poisson, Geometric).
    ``loop_mass_tol``: iteration stops when the running (not yet
    exited) unnormalized mass falls below this.
    ``max_loop_iterations``: hard cap on loop peeling; exceeding it with
    more than ``loop_mass_tol`` running mass raises.
    ``max_states``: guard against state-space blow-up.
    ``prune_dead``: project states onto live variables (disable only
    for debugging — results are identical either way).
    """

    support_tol: float = 1e-12
    loop_mass_tol: float = 1e-12
    max_loop_iterations: int = 10_000
    max_states: int = 2_000_000
    prune_dead: bool = True


@dataclass(frozen=True)
class ExactResult:
    """Outcome of exact inference.

    ``distribution`` is the normalized output distribution (Figure 8's
    program semantics); ``normalizer`` is ``[[S]](λσ.1)(⊥)``, the
    probability mass of permitted terminating runs (times any soft
    factors).
    """

    distribution: FiniteDist
    normalizer: float


def _key(state: State) -> _StateKey:
    return tuple(sorted(state.items()))


def _unkey(key: _StateKey) -> State:
    return dict(key)


def _add(states: _Weighted, key: _StateKey, mass: float) -> None:
    if mass > 0.0:
        states[key] = states.get(key, 0.0) + mass


class _ExactInterpreter:
    def __init__(self, options: ExactOptions) -> None:
        self._opts = options

    def _project(
        self, states: _Weighted, live: FrozenSet[str]
    ) -> _Weighted:
        """Restrict every state to the live variables, merging states
        that have become indistinguishable."""
        if not self._opts.prune_dead:
            return states
        out: _Weighted = {}
        for key, mass in states.items():
            kept = tuple((n, v) for n, v in key if n in live)
            _add(out, kept, mass)
        return out

    def run_stmt(
        self, stmt: Stmt, states: _Weighted, live_out: FrozenSet[str]
    ) -> _Weighted:
        """Push every weighted state through ``stmt``; the result is
        projected onto ``live_out``."""
        if len(states) > self._opts.max_states:
            raise ExactEngineError(
                f"state count {len(states)} exceeds max_states={self._opts.max_states}"
            )
        if isinstance(stmt, Skip):
            return self._project(states, live_out)
        if isinstance(stmt, Decl):
            out: _Weighted = {}
            value = default_value(stmt.type)
            keep = stmt.name in live_out or not self._opts.prune_dead
            for key, mass in states.items():
                state = self._restrict(_unkey(key), live_out, extra=())
                if keep:
                    state[stmt.name] = value
                _add(out, _key(state), mass)
            return out
        if isinstance(stmt, Assign):
            out = {}
            keep = stmt.name in live_out or not self._opts.prune_dead
            for key, mass in states.items():
                state = _unkey(key)
                value = eval_expr(stmt.expr, state)
                state = self._restrict(state, live_out, extra=())
                if keep:
                    state[stmt.name] = value
                _add(out, _key(state), mass)
            return out
        if isinstance(stmt, Sample):
            out = {}
            keep = stmt.name in live_out or not self._opts.prune_dead
            for key, mass in states.items():
                state = _unkey(key)
                dist = make_distribution(
                    stmt.dist.name, eval_dist_args(stmt.dist, state)
                )
                if not dist.discrete:
                    raise ExactEngineError(
                        f"exact engine cannot enumerate continuous {stmt.dist.name}"
                    )
                base = self._restrict(state, live_out, extra=())
                if not keep:
                    # The drawn value is dead: total mass is unchanged.
                    _add(out, _key(base), mass)
                    continue
                for value, p in dist.enumerate_support(self._opts.support_tol):
                    branch = dict(base)
                    branch[stmt.name] = value
                    _add(out, _key(branch), mass * p)
            return out
        if isinstance(stmt, Observe):
            out = {}
            for key, mass in states.items():
                state = _unkey(key)
                if eval_expr(stmt.cond, state) is True:
                    _add(out, _key(self._restrict(state, live_out)), mass)
            return out
        if isinstance(stmt, ObserveSample):
            out = {}
            for key, mass in states.items():
                state = _unkey(key)
                dist = make_distribution(
                    stmt.dist.name, eval_dist_args(stmt.dist, state)
                )
                weight = dist.prob(eval_expr(stmt.value, state))
                _add(out, _key(self._restrict(state, live_out)), mass * weight)
            return out
        if isinstance(stmt, Factor):
            out = {}
            for key, mass in states.items():
                state = _unkey(key)
                weight = math.exp(float(eval_expr(stmt.log_weight, state)))
                _add(out, _key(self._restrict(state, live_out)), mass * weight)
            return out
        if isinstance(stmt, Block):
            # Thread liveness right to left so each child projects onto
            # exactly what its continuation reads.
            live_sets = []
            live = live_out
            for s in reversed(stmt.stmts):
                live_sets.append(live)
                live = live_in(s, live)
            live_sets.reverse()
            for s, live in zip(stmt.stmts, live_sets):
                states = self.run_stmt(s, states, live)
            return states
        if isinstance(stmt, If):
            true_states: _Weighted = {}
            false_states: _Weighted = {}
            for key, mass in states.items():
                state = _unkey(key)
                target = (
                    true_states
                    if eval_expr(stmt.cond, state) is True
                    else false_states
                )
                _add(target, key, mass)
            out = self.run_stmt(stmt.then_branch, true_states, live_out)
            for key, mass in self.run_stmt(
                stmt.else_branch, false_states, live_out
            ).items():
                _add(out, key, mass)
            return out
        if isinstance(stmt, While):
            return self._run_while(stmt, states, live_out)
        raise TypeError(f"not a statement: {stmt!r}")

    def _restrict(
        self, state: State, live: FrozenSet[str], extra: Tuple[str, ...] = ()
    ) -> State:
        if not self._opts.prune_dead:
            return state
        return {
            n: v for n, v in state.items() if n in live or n in extra
        }

    def _run_while(
        self, stmt: While, states: _Weighted, live_out: FrozenSet[str]
    ) -> _Weighted:
        # Everything live across an iteration must be retained while
        # the loop runs.
        loop_live = live_in(stmt, live_out)
        body_live = loop_live | free_vars(stmt.cond)
        exited: _Weighted = {}
        running = self._project(states, body_live)
        previous: _Weighted = {}
        for _ in range(self._opts.max_loop_iterations):
            if not running:
                return exited
            next_running: _Weighted = {}
            for key, mass in running.items():
                state = _unkey(key)
                if eval_expr(stmt.cond, state) is True:
                    _add(next_running, key, mass)
                else:
                    _add(exited, _key(self._restrict(state, live_out)), mass)
            if not next_running:
                return exited
            if sum(next_running.values()) <= self._opts.loop_mass_tol:
                # The remaining mass corresponds to (approximately)
                # non-terminating runs; the sup-semantics assigns it no
                # output mass.
                return exited
            if next_running == previous:
                # The running set reached a fixpoint: the same states
                # with the same masses recur every iteration, so no
                # further mass will ever exit.  These are exactly
                # non-terminating runs (e.g. ``while (!x) skip``); the
                # sup-semantics drops them.
                return exited
            previous = next_running
            running = self.run_stmt(stmt.body, next_running, body_live)
        remaining = sum(running.values())
        if remaining > self._opts.loop_mass_tol:
            raise ExactEngineError(
                f"loop did not converge after {self._opts.max_loop_iterations} "
                f"iterations ({remaining:.3g} unnormalized mass still running)"
            )
        return exited


def exact_inference(
    program: Program, options: ExactOptions = ExactOptions()
) -> ExactResult:
    """Compute the normalized output distribution of ``program``.

    Raises :class:`ExactEngineError` for continuous programs or
    non-converging loops, and ``ValueError`` when the normalizer is zero
    (every run blocked — Theorem 1's excluded case).
    """
    interp = _ExactInterpreter(options)
    ret_live = frozenset(free_vars(program.ret))
    final = interp.run_stmt(program.body, {(): 1.0}, ret_live)
    weights: Dict[Value, float] = {}
    normalizer = 0.0
    for key, mass in final.items():
        state = _unkey(key)
        value = eval_expr(program.ret, state)
        weights[value] = weights.get(value, 0.0) + mass
        normalizer += mass
    if normalizer <= 0.0:
        raise ValueError(
            "program has zero probability of a permitted terminating run"
        )
    return ExactResult(FiniteDist(weights), normalizer)
