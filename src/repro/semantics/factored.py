"""Exact product recombination of per-factor posteriors.

A :class:`repro.transforms.factorize.FactorSet` partitions a program
into factors whose key sets are disjoint, so the unnormalized measure
of the whole program is the product of the factors' measures:

* the joint posterior over all query variables is the product of the
  per-factor posteriors (disjoint variable sets);
* the normalizer is the product of the per-factor normalizers
  (evidence-only factors contribute exactly their normalizer);
* the output distribution is the original return expression pushed
  forward through that product.

:func:`factored_exact` implements this by enumerating the product of
the per-factor supports — the whole point of factorisation is that
``|S_1| × ... × |S_K|`` per-factor enumeration plus a product over
supports is exponentially cheaper than one enumeration over the joint
state space.  It raises exactly where the monolithic engine would:
``ValueError`` when any factor's normalizer is zero (the product is
then zero — Theorem 1's excluded case), :class:`ExactEngineError`
when any factor is out of the engine's reach.

The qa factorisation oracle checks ``factored_exact(factorize(P)) ==
exact_inference(P)`` with TV distance zero on every enumerable fuzz
program.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Dict

from .distribution import FiniteDist
from .exact import ExactOptions, ExactResult, exact_inference

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..transforms.factorize import FactorSet

__all__ = ["factored_exact"]


def factored_exact(
    factor_set: "FactorSet", options: ExactOptions = ExactOptions()
) -> ExactResult:
    """Exact inference as a product over the factors of ``factor_set``.

    Runs the enumeration engine on every factor independently, then
    recombines: output values come from evaluating the original return
    expression on the cartesian product of per-factor supports, and
    the normalizer is the product of per-factor normalizers.
    """
    parts = [
        exact_inference(factor.program, options)
        for factor in factor_set.factors
    ]
    normalizer = 1.0
    for part in parts:
        normalizer *= part.normalizer
    weights: Dict[object, float] = {}
    for combo in itertools.product(*(p.distribution.items() for p in parts)):
        prob = 1.0
        for _value, p in combo:
            prob *= p
        if prob <= 0.0:
            continue
        value = factor_set.recombine([v for v, _p in combo])
        weights[value] = weights.get(value, 0.0) + prob
    return ExactResult(
        distribution=FiniteDist(weights), normalizer=normalizer
    )
