"""Compiled execution of PROB programs: the shared IR's basic blocks
are translated to Python source once per program, and subsequent runs
call the generated function instead of walking the AST.

:func:`compile_program` lowers the program (the same identity-memoized
:func:`repro.ir.lower.lower` the analyses use), walks the region tree
emitting one straight-line run of Python statements per basic block
(the structured skeleton — ``if`` / ``while`` — comes from the region
tree, so every CFG node is compiled exactly once), and ``exec``'s the
result.  The generated code replicates :func:`repro.semantics.executor
.run_program` observable-for-observable:

* sample **addresses** are the same tuples, so traces replay across
  interpreted and compiled runs interchangeably;
* the RNG is consumed in the same order, so a fixed seed yields the
  same :class:`RunResult` stream;
* statement counting, hard-``observe`` blocking (and the
  ``observe_penalty`` relaxation), the loop-iteration cap, and
  division/modulo-by-zero :class:`EvalError`\\ s all match.

What the compilation buys: per-node interpretive dispatch (isinstance
chains, state-dict reads and writes, recursive calls) becomes native
Python locals and jumps, and distribution objects with constant
parameters are constructed once at compile time instead of once per
visit.  ``benchmarks/bench_compiled_executor.py`` measures the
resulting speedup on the Table 1 models.

A generator variant (:class:`CompiledRun`) yields at conditioning
barriers with the same protocol as the SMC interpreter's ``_Run``, so
particles can run compiled too.

The only deliberate divergence: reads of never-assigned variables and
``Decl`` with an unknown type raise :class:`EvalError` at compile time
or with a synthesized message, rather than mid-run — the validator
rejects such programs up front, so engines never see the difference.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple, Union

from ..core.ast import (
    Assign,
    Binary,
    Const,
    Decl,
    DistCall,
    Expr,
    Factor,
    Observe,
    ObserveSample,
    Program,
    Sample,
    TupleExpr,
    Unary,
    Var,
)
from ..core.freevars import free_vars
from ..dists import DistributionError, make_distribution
from ..ir.lower import IfRegion, Leaf, Lowered, Region, Seq, WhileRegion, lower
from .executor import ExecutorOptions, NonTerminatingRun, RunResult
from .trace import Trace, TraceEntry
from .values import EvalError, _as_bool, default_value

__all__ = [
    "CompilationError",
    "CompiledProgram",
    "CompiledRun",
    "compile_program",
    "clear_compile_cache",
]

NEG_INF = float("-inf")

#: Sentinel return distinguishing a blocked run from any PROB value.
_BLOCKED = object()


class CompilationError(ValueError):
    """The program cannot be compiled (e.g. a variable name that is not
    a valid Python identifier)."""


class _Blocked(Exception):
    """Internal: a hard observe failed in a compiled run."""


def _smp(dist, name, addr, base, trace, rng):
    """Sample-site runtime helper: replay from ``base`` when the address
    holds a compatible entry, else draw fresh.  Mirrors
    ``_Executor._exec_sample`` exactly (including re-scoring replayed
    values under the current parameters)."""
    entry = base.get(addr)
    if entry is not None and entry.dist_name == name:
        lp = dist.log_prob(entry.value)
        if lp != NEG_INF:
            trace[addr] = TraceEntry(entry.value, lp, name)
            return entry.value
    value = dist.sample(rng)
    trace[addr] = TraceEntry(value, dist.log_prob(value), name)
    return value


def _div(left, right, msg):
    if right == 0:
        raise EvalError(msg)
    return left / right


def _mod(left, right, msg):
    if right == 0:
        raise EvalError(msg)
    return left % right


def _const_src(value) -> str:
    if isinstance(value, bool):
        return "True" if value else "False"
    if isinstance(value, int):
        return repr(value)
    if isinstance(value, float):
        if value != value:
            return "float('nan')"
        if value == float("inf"):
            return "float('inf')"
        if value == float("-inf"):
            return "float('-inf')"
        return repr(value)
    raise CompilationError(f"unsupported constant {value!r}")


def _tuple_src(parts: List[str]) -> str:
    if len(parts) == 1:
        return f"({parts[0]},)"
    return "(" + ", ".join(parts) + ")"


class _Codegen:
    """Emits the two entry points (``_compiled_run`` and the barrier
    generator ``_compiled_particle``) for one lowered program."""

    def __init__(self, lowered: Lowered) -> None:
        self.lowered = lowered
        self.lines: List[str] = []
        #: Hoisted constant-parameter distributions, injected into the
        #: generated module's namespace as ``_d0, _d1, ...``.
        self.hoisted: Dict[str, object] = {}
        self._hoist_memo: Dict[Tuple[str, Tuple[object, ...]], str] = {}

    # -- expressions --------------------------------------------------------

    def expr(self, e: Expr) -> str:
        if isinstance(e, Var):
            return "_v_" + e.name
        if isinstance(e, Const):
            return _const_src(e.value)
        if isinstance(e, Unary):
            operand = self.expr(e.operand)
            if e.op == "!":
                return f"(not _b({operand}))"
            return f"(-{operand})"
        if isinstance(e, Binary):
            left, right = self.expr(e.left), self.expr(e.right)
            op = e.op
            if op == "&&":
                return f"(_b({left}) and _b({right}))"
            if op == "||":
                return f"(_b({left}) or _b({right}))"
            if op in ("==", "!=", "<", "<=", ">", ">=", "+", "-", "*"):
                return f"({left} {op} {right})"
            if op == "/":
                return f"_div({left}, {right}, {f'division by zero in {e}'!r})"
            if op == "%":
                return f"_mod({left}, {right}, {f'modulo by zero in {e}'!r})"
            raise CompilationError(f"unknown operator {op!r}")
        if isinstance(e, TupleExpr):
            inner = ", ".join(self.expr(el) for el in e.elements)
            if len(e.elements) == 1:
                inner += ","
            return f"({inner})"
        raise CompilationError(f"not an expression: {e!r}")

    def dist(self, d: DistCall) -> str:
        """Source evaluating ``d`` to a Distribution instance.  When all
        parameters are constants the instance is built once here and
        referenced by name; otherwise ``make_distribution`` runs per
        visit, exactly like the interpreter."""
        if all(isinstance(arg, Const) for arg in d.args):
            args = tuple(arg.value for arg in d.args)  # type: ignore[union-attr]
            key = (d.name, args)
            hit = self._hoist_memo.get(key)
            if hit is not None:
                return hit
            try:
                instance = make_distribution(d.name, args)
            except DistributionError:
                pass  # fall through: let the error surface at run time
            else:
                name = f"_d{len(self.hoisted)}"
                self.hoisted[name] = instance
                self._hoist_memo[key] = name
                return name
        args_src = _tuple_src([self.expr(arg) for arg in d.args]) if d.args else "()"
        return f"_mkd({d.name!r}, {args_src})"

    # -- statements ---------------------------------------------------------

    def emit(self, line: str, depth: int) -> None:
        self.lines.append("    " * depth + line)

    def region(
        self, region: Region, parts: List[str], depth: int, particle: bool
    ) -> None:
        before = len(self.lines)
        self._region(region, parts, depth, particle)
        if len(self.lines) == before:
            self.emit("pass", depth)

    def _region(
        self, region: Region, parts: List[str], depth: int, particle: bool
    ) -> None:
        if isinstance(region, Leaf):
            if region.node is not None:  # source `skip` emits nothing
                self.stmt(region.stmt, parts, depth, particle)
            return
        if isinstance(region, Seq):
            for i, child in enumerate(region.children):
                self._region(child, parts + [str(i)], depth, particle)
            return
        if isinstance(region, IfRegion):
            self.emit("_n += 1", depth)
            self.emit(f"if {self.expr(region.cond)} is True:", depth)
            self.region(region.then_region, parts + ["'T'"], depth + 1, particle)
            self.emit("else:", depth)
            self.region(region.else_region, parts + ["'E'"], depth + 1, particle)
            return
        if isinstance(region, WhileRegion):
            counter = f"_i{depth}"
            self.emit("_n += 1", depth)
            self.emit(f"{counter} = 0", depth)
            self.emit(f"while {self.expr(region.cond)} is True:", depth)
            self.emit(f"if {counter} >= _maxit:", depth + 1)
            self.emit(
                "raise NonTerminatingRun("
                'f"while loop exceeded {_maxit} iterations")',
                depth + 2,
            )
            self.region(region.body, parts + ["'W'", counter], depth + 1, particle)
            self.emit(f"{counter} += 1", depth + 1)
            self.emit("_n += 1", depth + 1)
            return
        raise CompilationError(f"not a region: {region!r}")

    def stmt(self, stmt, parts: List[str], depth: int, particle: bool) -> None:
        self.emit("_n += 1", depth)
        if isinstance(stmt, Decl):
            self.emit(f"_v_{stmt.name} = {_const_src(default_value(stmt.type))}", depth)
        elif isinstance(stmt, Assign):
            self.emit(f"_v_{stmt.name} = {self.expr(stmt.expr)}", depth)
        elif isinstance(stmt, Sample):
            addr = _tuple_src(parts) if parts else "()"
            self.emit(
                f"_v_{stmt.name} = _smp({self.dist(stmt.dist)}, "
                f"{stmt.dist.name!r}, {addr}, _base, _trace, _rng)",
                depth,
            )
        elif isinstance(stmt, Observe):
            cond = self.expr(stmt.cond)
            if particle:
                self.emit("_ctx.statements += _n; _n = 0", depth)
                self.emit(f"yield (0.0 if {cond} is True else NEG_INF)", depth)
            else:
                self.emit(f"if {cond} is not True:", depth)
                self.emit("if _pen is None:", depth + 1)
                self.emit("raise _Blocked", depth + 2)
                self.emit("_ll -= _pen", depth + 1)
                self.emit("_viol += 1", depth + 1)
        elif isinstance(stmt, ObserveSample):
            score = f"{self.dist(stmt.dist)}.log_prob({self.expr(stmt.value)})"
            if particle:
                self.emit("_ctx.statements += _n; _n = 0", depth)
                self.emit(f"yield {score}", depth)
            else:
                self.emit(f"_lp = {score}", depth)
                self.emit("if _lp == NEG_INF:", depth)
                self.emit("raise _Blocked", depth + 1)
                self.emit("_ll += _lp", depth)
        elif isinstance(stmt, Factor):
            weight = f"float({self.expr(stmt.log_weight)})"
            if particle:
                self.emit("_ctx.statements += _n; _n = 0", depth)
                self.emit(f"yield {weight}", depth)
            else:
                self.emit(f"_ll += {weight}", depth)
                self.emit("if _ll == NEG_INF:", depth)
                self.emit("raise _Blocked", depth + 1)
        else:
            raise CompilationError(f"not a primitive statement: {stmt!r}")

    # -- entry points -------------------------------------------------------

    def function(self, particle: bool) -> None:
        ret = self.lowered.ret
        assert ret is not None
        if particle:
            self.emit("def _compiled_particle(_ctx, _rng, _base, _trace, _maxit):", 0)
            # A program without conditioning barriers emits no `yield`;
            # this unreachable one keeps the function a generator.
            self.emit("if False:", 1)
            self.emit("yield None", 2)
            self.emit("_n = 0", 1)
            self.emit("try:", 1)
            self.region(self.lowered.root, [], 2, particle=True)
            self.emit("_ctx.statements += _n; _n = 0", 2)
            self.emit(f"_ctx.value = {self.expr(ret)}", 2)
            self.emit("except BaseException:", 1)
            self.emit("_ctx.statements += _n", 2)
            self.emit("raise", 2)
        else:
            self.emit("def _compiled_run(_rng, _base, _trace, _pen, _maxit):", 0)
            self.emit("_n = 0", 1)
            self.emit("_ll = 0.0", 1)
            self.emit("_viol = 0", 1)
            self.emit("try:", 1)
            self.region(self.lowered.root, [], 2, particle=False)
            self.emit(f"return {self.expr(ret)}, _ll, _n, _viol", 2)
            self.emit("except _Blocked:", 1)
            self.emit("return _BLOCKED, NEG_INF, _n, _viol", 2)
        self.emit("", 0)


class CompiledProgram:
    """A program translated to two Python functions: a forward runner
    with the :func:`run_program` contract and a barrier generator with
    the SMC particle contract."""

    def __init__(self, program: Program) -> None:
        if not isinstance(program, Program):
            raise CompilationError("compile_program requires a Program")
        for name in free_vars(program):
            if not ("_v_" + name).isidentifier():
                raise CompilationError(
                    f"variable name {name!r} cannot be compiled"
                )
        self.program = program
        lowered = lower(program)
        gen = _Codegen(lowered)
        gen.function(particle=False)
        gen.function(particle=True)
        self.source = "\n".join(gen.lines)
        self._hoisted = dict(gen.hoisted)
        self._exec()

    def _exec(self) -> None:
        """Bind the entry points by executing the generated source."""
        namespace: Dict[str, object] = {
            "NEG_INF": NEG_INF,
            "NonTerminatingRun": NonTerminatingRun,
            "_Blocked": _Blocked,
            "_BLOCKED": _BLOCKED,
            "_smp": _smp,
            "_mkd": make_distribution,
            "_b": _as_bool,
            "_div": _div,
            "_mod": _mod,
        }
        namespace.update(self._hoisted)
        exec(compile(self.source, "<repro.compiled>", "exec"), namespace)
        self._run = namespace["_compiled_run"]
        self._particle = namespace["_compiled_particle"]

    # ``exec``-produced functions cannot pickle, but the generated
    # source and the hoisted constant-parameter distributions can —
    # that is the whole compilation, so unpickling (the runtime cache's
    # on-disk layer, or shipping to a spawn-started worker) re-binds
    # the entry points without re-running lowering or codegen.

    def __getstate__(self) -> Dict[str, object]:
        return {
            "program": self.program,
            "source": self.source,
            "_hoisted": self._hoisted,
        }

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.program = state["program"]  # type: ignore[assignment]
        self.source = state["source"]  # type: ignore[assignment]
        self._hoisted = state["_hoisted"]  # type: ignore[assignment]
        self._exec()

    def run(
        self,
        rng: random.Random,
        base_trace: Optional[Trace] = None,
        options: ExecutorOptions = ExecutorOptions(),
    ) -> RunResult:
        """Execute once; same contract as :func:`run_program`."""
        trace: Trace = {}
        try:
            value, ll, statements, violations = self._run(
                rng,
                base_trace or {},
                trace,
                options.observe_penalty,
                options.max_loop_iterations,
            )
        except NameError as exc:  # read of a never-assigned variable
            name = getattr(exc, "name", "") or ""
            raise EvalError(
                f"variable {name.removeprefix('_v_')!r} is not defined"
            ) from None
        if value is _BLOCKED:
            value = None
        return RunResult(value, ll, trace, statements, violations)


class CompiledRun:
    """Compiled drop-in for the SMC interpreter's ``_Run``: ``advance``
    runs to the next conditioning barrier and returns its log-weight
    increment (``None`` once finished); ``trace`` / ``statements`` /
    ``value`` follow the same mutable-attribute protocol."""

    __slots__ = ("trace", "statements", "value", "_gen")

    def __init__(
        self,
        compiled: CompiledProgram,
        rng: random.Random,
        base_trace: Optional[Trace],
        max_loop_iterations: int,
    ) -> None:
        self.trace: Trace = {}
        self.statements = 0
        self.value = None
        self._gen = compiled._particle(
            self, rng, base_trace or {}, self.trace, max_loop_iterations
        )

    def advance(self) -> Optional[float]:
        try:
            return next(self._gen)
        except StopIteration:
            return None


#: ``id(program) -> (program, compiled)``; strong references keep the
#: identity keys from being reused while entries are alive.
_COMPILE_CACHE: Dict[int, Tuple[Program, CompiledProgram]] = {}
#: ``content fingerprint -> compiled``; catches structurally equal
#: programs that are distinct objects (a re-parsed source file, a
#: slice recomputed by a fresh pipeline invocation).
_FINGERPRINT_CACHE: Dict[str, CompiledProgram] = {}
_COMPILE_CACHE_MAX = 512


def clear_compile_cache() -> None:
    """Drop all memoized compilations (mainly for tests)."""
    _COMPILE_CACHE.clear()
    _FINGERPRINT_CACHE.clear()


def compile_program(program: Program) -> CompiledProgram:
    """Compile ``program``, memoized twice over.

    The identity layer (``id``-keyed, the per-proposal fast path: MH
    calls this on every re-execution of the same object) backs onto a
    content-fingerprint layer, so a structurally identical program —
    re-sliced, re-parsed, or arriving in another worker — reuses the
    compilation instead of re-running codegen.
    """
    key = id(program)
    hit = _COMPILE_CACHE.get(key)
    if hit is not None and hit[0] is program:
        return hit[1]
    from ..core.fingerprint import program_fingerprint

    fp = program_fingerprint(program, kind="compiled")
    compiled = _FINGERPRINT_CACHE.get(fp)
    if compiled is None:
        from ..obs.recorder import current_recorder

        with current_recorder().span("semantics.compile") as sp:
            compiled = CompiledProgram(program)
            sp.set(code_chars=len(compiled.source))
        if len(_FINGERPRINT_CACHE) >= _COMPILE_CACHE_MAX:
            _FINGERPRINT_CACHE.clear()
        _FINGERPRINT_CACHE[fp] = compiled
    if len(_COMPILE_CACHE) >= _COMPILE_CACHE_MAX:
        _COMPILE_CACHE.clear()
    _COMPILE_CACHE[key] = (program, compiled)
    return compiled
