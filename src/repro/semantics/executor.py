"""Forward execution of PROB programs with trace recording and replay.

:func:`run_program` executes a program once:

* sampling fresh values from each ``x ~ Dist(...)`` site, or reusing
  the value recorded in a *base trace* at the same address (the replay
  mechanism MH proposals use);
* accumulating the run's **log likelihood** from ``observe`` (0 or
  ``-inf``), ``observe(Dist, v)`` (log density), and ``factor``;
* counting executed primitive statements, the deterministic work
  measure the benchmark harness reports alongside wall time.

A run whose hard ``observe`` fails is *blocked*: execution stops early
and the result carries ``log_likelihood == -inf``.  A ``while`` loop
exceeding the iteration cap raises :class:`NonTerminatingRun`; callers
treat such runs as contributing zero mass, which matches the paper's
normalized-over-terminating-runs semantics.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from ..core.ast import (
    Assign,
    Block,
    Decl,
    Factor,
    If,
    Observe,
    ObserveSample,
    Program,
    Sample,
    Skip,
    Stmt,
    While,
)
from ..dists import make_distribution
from .trace import Address, Trace, TraceEntry, total_log_prior
from .values import State, Value, default_value, eval_dist_args, eval_expr

__all__ = ["RunResult", "NonTerminatingRun", "run_program", "ExecutorOptions"]

NEG_INF = float("-inf")


class NonTerminatingRun(RuntimeError):
    """A while loop exceeded the iteration cap."""


class _BlockedRun(Exception):
    """Internal: a hard observe failed; unwind the run."""


@dataclass(frozen=True)
class ExecutorOptions:
    """``max_loop_iterations`` bounds each while loop's trip count.

    ``observe_penalty``: when set, a failed hard ``observe`` does not
    block the run; it subtracts the penalty from the log likelihood and
    increments the run's violation count.  This *relaxed* execution
    mode powers the annealed initialization of the MH engines (finding
    a trace satisfying thousands of hard observations — the TrueSkill
    benchmarks — by rejection alone is hopeless).
    """

    max_loop_iterations: int = 1_000_000
    observe_penalty: Optional[float] = None


@dataclass
class RunResult:
    """Outcome of one forward run.

    ``value`` is ``None`` for blocked runs.  ``log_joint`` is the score
    lightweight MH compares: total log prior of the trace plus the log
    likelihood.  ``violations`` counts failed hard observes under the
    relaxed (``observe_penalty``) mode; it is 0 in normal mode.
    """

    value: Optional[Value]
    log_likelihood: float
    trace: Trace
    statements_executed: int
    violations: int = 0

    @property
    def blocked(self) -> bool:
        return self.log_likelihood == NEG_INF

    @property
    def log_joint(self) -> float:
        if self.blocked:
            return NEG_INF
        return self.log_likelihood + total_log_prior(self.trace)


class _Executor:
    def __init__(
        self,
        rng: random.Random,
        base_trace: Optional[Trace],
        options: ExecutorOptions,
    ) -> None:
        self._rng = rng
        self._base = base_trace or {}
        self._opts = options
        self.state: State = {}
        self.trace: Trace = {}
        self.log_likelihood = 0.0
        self.statements = 0
        self.violations = 0

    def exec_stmt(self, stmt: Stmt, address: Address) -> None:
        if isinstance(stmt, Skip):
            return
        if isinstance(stmt, Block):
            for i, s in enumerate(stmt.stmts):
                self.exec_stmt(s, address + (i,))
            return
        self.statements += 1
        if isinstance(stmt, Decl):
            self.state[stmt.name] = default_value(stmt.type)
            return
        if isinstance(stmt, Assign):
            self.state[stmt.name] = eval_expr(stmt.expr, self.state)
            return
        if isinstance(stmt, Sample):
            self._exec_sample(stmt, address)
            return
        if isinstance(stmt, Observe):
            if eval_expr(stmt.cond, self.state) is not True:
                if self._opts.observe_penalty is not None:
                    self.log_likelihood -= self._opts.observe_penalty
                    self.violations += 1
                    return
                self.log_likelihood = NEG_INF
                raise _BlockedRun()
            return
        if isinstance(stmt, ObserveSample):
            dist = make_distribution(
                stmt.dist.name, eval_dist_args(stmt.dist, self.state)
            )
            lp = dist.log_prob(eval_expr(stmt.value, self.state))
            if lp == NEG_INF:
                self.log_likelihood = NEG_INF
                raise _BlockedRun()
            self.log_likelihood += lp
            return
        if isinstance(stmt, Factor):
            self.log_likelihood += float(eval_expr(stmt.log_weight, self.state))
            if self.log_likelihood == NEG_INF:
                raise _BlockedRun()
            return
        if isinstance(stmt, If):
            if eval_expr(stmt.cond, self.state) is True:
                self.exec_stmt(stmt.then_branch, address + ("T",))
            else:
                self.exec_stmt(stmt.else_branch, address + ("E",))
            return
        if isinstance(stmt, While):
            iteration = 0
            while eval_expr(stmt.cond, self.state) is True:
                if iteration >= self._opts.max_loop_iterations:
                    raise NonTerminatingRun(
                        f"while loop exceeded {self._opts.max_loop_iterations} iterations"
                    )
                self.exec_stmt(stmt.body, address + ("W", iteration))
                iteration += 1
                self.statements += 1
            return
        raise TypeError(f"not a statement: {stmt!r}")

    def _exec_sample(self, stmt: Sample, address: Address) -> None:
        dist = make_distribution(stmt.dist.name, eval_dist_args(stmt.dist, self.state))
        entry = self._base.get(address)
        if entry is not None and entry.dist_name == stmt.dist.name:
            lp = dist.log_prob(entry.value)
            if lp != NEG_INF:
                # Reuse the recorded value, re-scored under the current
                # parameters (which may have changed upstream).
                self.trace[address] = TraceEntry(entry.value, lp, stmt.dist.name)
                self.state[stmt.name] = entry.value
                return
        value = dist.sample(self._rng)
        self.trace[address] = TraceEntry(
            value, dist.log_prob(value), stmt.dist.name
        )
        self.state[stmt.name] = value


def run_program(
    program: Program,
    rng: random.Random,
    base_trace: Optional[Trace] = None,
    options: ExecutorOptions = ExecutorOptions(),
) -> RunResult:
    """Execute ``program`` once.

    When ``base_trace`` is given, sample sites whose address appears in
    it (with a compatible distribution) reuse the recorded value; all
    other sites sample fresh from the prior.

    Raises :class:`NonTerminatingRun` when a loop exceeds the cap.
    """
    ex = _Executor(rng, base_trace, options)
    try:
        ex.exec_stmt(program.body, ())
        value: Optional[Value] = eval_expr(program.ret, ex.state)
    except _BlockedRun:
        value = None
    return RunResult(
        value, ex.log_likelihood, ex.trace, ex.statements, ex.violations
    )
